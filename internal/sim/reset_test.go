package sim

import (
	"testing"
)

// driveEngine exercises every transport primitive and some membership
// churn, returning the final counters and a digest of what was delivered
// — enough state to distinguish any divergence between two engines.
func driveEngine(t *testing.T, e *Engine) (Counters, []int64) {
	t.Helper()
	n := e.N()
	var digest []int64
	for round := 0; round < 40; round++ {
		for i := 0; i < n; i++ {
			if !e.Alive(i) {
				continue
			}
			to := e.RNG(i).IntnOther(n, i)
			e.Send(i, to, Payload{X: int64(i)})
		}
		if round%3 == 0 {
			e.SendVia(0, 1%n, 2%n, Payload{Y: int64(round)})
			e.SendRouted(0, []int{1 % n, 2 % n, 3 % n}, Payload{Y: int64(round)})
			e.SendRoutedReliable(0, []int{3 % n, 1 % n}, Payload{}, 0)
		}
		if round == 10 {
			e.Crash(n / 2)
		}
		if round == 20 {
			e.Revive(n / 2)
		}
		calls := make([]Call, n)
		for i := 0; i < n; i++ {
			if e.Alive(i) && i%2 == 0 {
				calls[i] = Call{Active: true, To: e.RNG(i).IntnOther(n, i), Pay: Payload{A: float64(i)}}
			}
		}
		e.ResolveCalls(calls,
			func(callee, caller int, req Payload) (Payload, bool) { return Payload{A: req.A + 1}, true },
			func(caller int, resp Payload) { digest = append(digest, int64(resp.A)) })
		e.Tick()
		for i := 0; i < n; i++ {
			for _, m := range e.Inbox(i) {
				digest = append(digest, int64(m.From)<<32|int64(m.To)|m.Pay.X<<8)
			}
		}
		digest = append(digest, int64(len(e.AliveIDs())))
	}
	return e.Stats(), digest
}

// Reset must reproduce NewEngine bit-for-bit: same counters, same
// deliveries, same RNG streams, same loss decisions — even when the
// engine it reuses is dirty (mid-flight messages, crashed nodes, hooks,
// advanced RNGs) and even when the options change between runs.
func TestResetEquivalentToNewEngine(t *testing.T) {
	dirty := func(opts Options) *Engine {
		e := NewEngine(64, Options{Seed: 999, Loss: 0.3})
		e.SetRoundHook(func(int) {})
		e.SetLinkFault(func(int, int) float64 { return 0.5 })
		e.SetRoundObserver(func(int) {})
		e.SetPhase("dirty")
		driveEngine(t, e)
		e.Send(0, 1, Payload{})                        // leave a message in flight
		e.SendRouted(0, []int{1, 2, 3}, Payload{X: 7}) // and a routed one
		e.Reset(opts)
		return e
	}
	for _, opts := range []Options{
		{Seed: 5},
		{Seed: 6, Loss: 0.25},
		{Seed: 7, Loss: 0.1, CrashFrac: 0.2},
	} {
		fresh := NewEngine(64, opts)
		reused := dirty(opts)
		if got, want := reused.Phase(), fresh.Phase(); got != want {
			t.Fatalf("opts %+v: phase %q after Reset, want %q", opts, got, want)
		}
		if reused.Faulty() {
			t.Fatalf("opts %+v: hooks survived Reset", opts)
		}
		if !reused.PendingEmpty() {
			t.Fatalf("opts %+v: in-flight messages survived Reset", opts)
		}
		wantStats, wantDigest := driveEngine(t, fresh)
		gotStats, gotDigest := driveEngine(t, reused)
		if gotStats != wantStats {
			t.Fatalf("opts %+v: counters diverged:\n fresh %+v\n reset %+v", opts, wantStats, gotStats)
		}
		if len(gotDigest) != len(wantDigest) {
			t.Fatalf("opts %+v: digest length %d vs %d", opts, len(gotDigest), len(wantDigest))
		}
		for i := range wantDigest {
			if gotDigest[i] != wantDigest[i] {
				t.Fatalf("opts %+v: delivery digest diverged at %d", opts, i)
			}
		}
	}
}

// Messages in flight when Reset is called must never surface afterwards,
// including ones scheduled far ahead by long routed paths.
func TestResetDropsInFlightMessages(t *testing.T) {
	e := NewEngine(40, Options{Seed: 30})
	path := make([]int, 30) // schedules 30 rounds out: ring has grown
	for i := range path {
		path[i] = i + 1
	}
	e.SendRouted(0, path, Payload{X: 1})
	e.Send(0, 1, Payload{X: 2})
	if e.PendingEmpty() {
		t.Fatal("messages should be in flight")
	}
	e.Reset(Options{Seed: 30})
	if !e.PendingEmpty() {
		t.Fatal("PendingEmpty false after Reset")
	}
	for r := 0; r < 40; r++ {
		e.Tick()
		for i := 0; i < e.N(); i++ {
			if len(e.Inbox(i)) != 0 {
				t.Fatalf("round %d: message leaked across Reset to node %d", e.Round(), i)
			}
		}
	}
}

// A routed send over a path longer than the delivery ring must grow the
// ring and still deliver exactly at round + len(path), with messages
// already in flight keeping their schedules.
func TestRingGrowthPreservesSchedules(t *testing.T) {
	e := NewEngine(80, Options{Seed: 31})
	e.Send(0, 70, Payload{X: 100}) // due round 1
	shortPath := []int{1, 2, 3, 4, 5}
	e.SendRouted(0, shortPath, Payload{X: 200}) // due round 5
	longPath := make([]int, 50)                 // due round 50: forces growth past 16
	for i := range longPath {
		longPath[i] = i + 10
	}
	e.SendRouted(0, longPath, Payload{X: 300})
	arrivals := map[int]int64{}
	for r := 1; r <= 60; r++ {
		e.Tick()
		for i := 0; i < e.N(); i++ {
			for _, m := range e.Inbox(i) {
				arrivals[r] = m.Pay.X
				if i != m.To {
					t.Fatalf("misdelivered: %+v in inbox %d", m, i)
				}
			}
		}
	}
	want := map[int]int64{1: 100, len(shortPath): 200, len(longPath): 300}
	if len(arrivals) != len(want) {
		t.Fatalf("arrivals %v, want %v", arrivals, want)
	}
	for r, x := range want {
		if arrivals[r] != x {
			t.Fatalf("round %d delivered %d, want %d (all: %v)", r, arrivals[r], x, arrivals)
		}
	}
	if !e.PendingEmpty() {
		t.Fatal("ring not drained")
	}
}

// Growth in the middle of a busy schedule: messages due on many distinct
// future rounds must all survive the re-filing.
func TestRingGrowthMidSchedule(t *testing.T) {
	e := NewEngine(40, Options{Seed: 32})
	e.Tick() // put the current round off zero so slot arithmetic is exercised
	e.Tick()
	e.Tick()
	// Fill rounds current+1 .. current+12 via routed paths of each length.
	for l := 1; l <= 12; l++ {
		path := make([]int, l)
		for i := range path {
			path[i] = i + 1
		}
		e.SendRouted(0, path, Payload{X: int64(l)})
	}
	// Now a 33-hop path grows the ring from 16 to 64 slots.
	long := make([]int, 33)
	for i := range long {
		long[i] = i + 1
	}
	e.SendRouted(0, long, Payload{X: 99})
	got := map[int]int64{}
	start := e.Round()
	for e.Round() < start+40 {
		e.Tick()
		for _, m := range e.Inbox(e.N() - 1) {
			_ = m
		}
		for i := 0; i < e.N(); i++ {
			for _, m := range e.Inbox(i) {
				got[e.Round()-start] = m.Pay.X
			}
		}
	}
	for l := 1; l <= 12; l++ {
		if got[l] != int64(l) {
			t.Fatalf("delivery for %d-hop path at offset %d: got %v", l, l, got)
		}
	}
	if got[33] != 99 {
		t.Fatalf("post-growth delivery missing: %v", got)
	}
}

// The cached alive-ID list must track Crash/Revive exactly and stay
// identical to a fresh scan.
func TestAliveIDsCacheTracksMembership(t *testing.T) {
	e := NewEngine(50, Options{Seed: 33, CrashFrac: 0.3})
	check := func() {
		t.Helper()
		var want []int
		for i := 0; i < e.N(); i++ {
			if e.Alive(i) {
				want = append(want, i)
			}
		}
		got := e.AliveIDs()
		if len(got) != len(want) {
			t.Fatalf("AliveIDs len %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("AliveIDs[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
	check()
	e.Crash(7)
	check()
	e.Crash(7) // no-op must not corrupt the cache
	check()
	e.Revive(7)
	check()
	e.Reset(Options{Seed: 34})
	check()
	// Repeated calls between membership changes return the same backing
	// slice (the allocation-free fast path).
	a, b := e.AliveIDs(), e.AliveIDs()
	if &a[0] != &b[0] {
		t.Fatal("AliveIDs reallocated without a membership change")
	}
}

// Engine reuse must not allocate: after the first run has grown every
// buffer, a Reset-and-rerun cycle stays on recycled memory.
func TestResetReuseDoesNotGrowAllocations(t *testing.T) {
	e := NewEngine(256, Options{Seed: 35, Loss: 0.05})
	run := func() {
		for round := 0; round < 30; round++ {
			for i := 0; i < e.N(); i++ {
				e.Send(i, e.RNG(i).IntnOther(e.N(), i), Payload{})
			}
			e.Tick()
		}
	}
	run()
	e.Reset(Options{Seed: 35, Loss: 0.05})
	allocs := testing.AllocsPerRun(10, func() {
		e.Reset(Options{Seed: 35, Loss: 0.05})
		run()
	})
	// The budget is a handful of allocations (testing harness noise), not
	// the tens of thousands a per-run engine build would cost.
	if allocs > 8 {
		t.Fatalf("Reset+run allocates %v objects per cycle; the hot path must reuse buffers", allocs)
	}
}
