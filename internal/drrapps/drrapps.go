// Package drrapps explores the paper's closing question (§6): "whether
// the DRR technique can be used to obtain improved bounds for other
// distributed computing problems". It applies the DRR-gossip machinery
// to two classic problems:
//
//   - Leader election: every node learns the address of a single common
//     leader, in O(log n) rounds and O(n log log n) messages — run
//     DRR-gossip-max over the (rank, id) keys the DRR phase already drew,
//     then disseminate. The elected leader is the globally
//     highest-ranked node, which is necessarily a DRR root (it can find
//     no higher-ranked node to connect to).
//
//   - Spanning structure: a two-level spanning forest of the complete
//     graph — the DRR trees plus a star over their roots centred at the
//     leader — built with the same message budget. Every node ends up
//     with a parent pointer (the leader with none), giving an O(log n)-
//     depth tree usable for broadcast/aggregation afterwards.
package drrapps

import (
	"errors"
	"fmt"
	"math"

	"drrgossip/internal/convergecast"
	"drrgossip/internal/drr"
	"drrgossip/internal/forest"
	"drrgossip/internal/gossip"
	"drrgossip/internal/sim"
)

// ElectionResult reports a leader election.
type ElectionResult struct {
	// Leader is the elected node (the globally highest DRR rank).
	Leader int
	// PerNode is each node's belief about the leader (-1 for crashed
	// nodes).
	PerNode []int
	// Consensus reports whether every surviving node agrees.
	Consensus bool
	Forest    *forest.Forest
	Stats     sim.Counters
}

// ErrNoNodes is returned when no node is alive.
var ErrNoNodes = errors.New("drrapps: no alive nodes")

// electKey packs (rank, id) into one float64 so Gossip-max elects the
// highest-ranked node with id as tiebreaker: rank is quantized to 2^26
// levels and the id occupies the low 24 bits (exact for n < 2^24).
func electKey(rank float64, id int) float64 {
	q := math.Floor(rank * (1 << 26))
	return q*(1<<24) + float64(id)
}

func decodeElectKey(key float64) int {
	return int(int64(key) & (1<<24 - 1))
}

// ElectLeader elects the highest-DRR-ranked node as the common leader.
func ElectLeader(eng *sim.Engine, opts Options) (*ElectionResult, error) {
	n := eng.N()
	start := eng.Stats()
	dres, err := drr.Run(eng, opts.DRR)
	if err != nil {
		return nil, err
	}
	f := dres.Forest
	if f.NumTrees() == 0 {
		return nil, ErrNoNodes
	}

	// Each tree's candidate is its highest rank — which is the root's own
	// rank, by the DRR invariant — keyed with the root id for
	// dissemination.
	keys := make([]float64, n)
	for i := 0; i < n; i++ {
		if f.Member(i) {
			keys[i] = electKey(dres.Ranks[i], i)
		}
	}
	covmax, _, err := convergecast.Max(eng, f, keys, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	rootTo, _, err := convergecast.BroadcastRootAddr(eng, f, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	gres, err := gossip.Max(eng, f, rootTo, covmax, opts.Gossip)
	if err != nil {
		return nil, err
	}
	perNodeKey, _, err := convergecast.BroadcastValue(eng, f, gres.Estimates, opts.Convergecast)
	if err != nil {
		return nil, err
	}

	maxKey := math.Inf(-1)
	for _, v := range gres.Estimates {
		if v > maxKey {
			maxKey = v
		}
	}
	leader := decodeElectKey(maxKey)
	perNode := make([]int, n)
	consensus := true
	for i := 0; i < n; i++ {
		if !f.Member(i) {
			perNode[i] = -1
			continue
		}
		perNode[i] = decodeElectKey(perNodeKey[i])
		if perNode[i] != leader {
			consensus = false
		}
	}
	return &ElectionResult{
		Leader:    leader,
		PerNode:   perNode,
		Consensus: consensus,
		Forest:    f,
		Stats:     eng.Stats().Sub(start),
	}, nil
}

// Options tune the drrapps protocols; zero values reproduce the paper's
// parameters.
type Options struct {
	DRR          drr.Options
	Convergecast convergecast.Options
	Gossip       gossip.Options
}

// SpanningResult reports a spanning-structure construction.
type SpanningResult struct {
	// Parent is a spanning tree of the surviving nodes: Parent[i] is the
	// tree parent, forest.Root for the leader, forest.NotMember for
	// crashed nodes.
	Parent []int
	Leader int
	// Depth is the tree's height (O(log n): DRR tree height plus one
	// star level).
	Depth int
	Stats sim.Counters
}

// BuildSpanningTree builds a spanning tree of the surviving nodes: DRR
// trees with every non-leader root adopted by the leader.
func BuildSpanningTree(eng *sim.Engine, opts Options) (*SpanningResult, error) {
	start := eng.Stats()
	el, err := ElectLeader(eng, opts)
	if err != nil {
		return nil, err
	}
	if !el.Consensus {
		return nil, fmt.Errorf("drrapps: no leader consensus")
	}
	f := el.Forest
	n := eng.N()
	parent := make([]int, n)
	for i := 0; i < n; i++ {
		switch {
		case !f.Member(i):
			parent[i] = forest.NotMember
		case i == el.Leader:
			parent[i] = forest.Root
		case f.IsRoot(i):
			// Non-leader roots attach to the leader (they know its
			// address from the election broadcast). One registration
			// call each: O(n/log n) messages.
			parent[i] = el.Leader
			eng.Send(i, el.Leader, sim.Payload{Kind: 0x91, X: int64(i)})
		default:
			parent[i] = f.Parent(i)
		}
	}
	eng.Tick()
	// The leader is a DRR root (it outranks every probe); its own tree
	// keeps its original parent pointers.
	span, err := forest.FromParents(parent)
	if err != nil {
		return nil, fmt.Errorf("drrapps: invalid spanning tree: %w", err)
	}
	if span.NumTrees() != 1 {
		return nil, fmt.Errorf("drrapps: expected one spanning tree, got %d", span.NumTrees())
	}
	return &SpanningResult{
		Parent: parent,
		Leader: el.Leader,
		Depth:  span.MaxHeight(),
		Stats:  eng.Stats().Sub(start),
	}, nil
}
