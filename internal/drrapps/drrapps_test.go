package drrapps

import (
	"math"
	"testing"

	"drrgossip/internal/forest"
	"drrgossip/internal/sim"
)

func TestElectLeaderConsensus(t *testing.T) {
	for _, n := range []int{256, 2048} {
		eng := sim.NewEngine(n, sim.Options{Seed: 151})
		res, err := ElectLeader(eng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus {
			t.Fatalf("n=%d: no consensus", n)
		}
		if res.Leader < 0 || res.Leader >= n {
			t.Fatalf("leader %d out of range", res.Leader)
		}
		for i, l := range res.PerNode {
			if res.Forest.Member(i) && l != res.Leader {
				t.Fatalf("node %d believes %d, leader %d", i, l, res.Leader)
			}
		}
	}
}

func TestElectLeaderIsAliveAndHighRank(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 152, CrashFrac: 0.2})
	res, err := ElectLeader(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Alive(res.Leader) {
		t.Fatal("elected a crashed node")
	}
	if !res.Consensus {
		t.Fatal("no consensus under crashes")
	}
}

func TestElectLeaderUnderLoss(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 153, Loss: 0.125})
	res, err := ElectLeader(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("no consensus under loss")
	}
}

func TestElectLeaderComplexity(t *testing.T) {
	// O(log n) rounds and O(n loglog n) messages — the §6 payoff.
	n := 8192
	eng := sim.NewEngine(n, sim.Options{Seed: 154})
	res, err := ElectLeader(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	logn := math.Log2(float64(n))
	if float64(res.Stats.Rounds) > 20*logn {
		t.Fatalf("rounds %d exceed 20 log n", res.Stats.Rounds)
	}
	if float64(res.Stats.Messages) > 12*float64(n)*math.Log2(logn) {
		t.Fatalf("messages %d exceed 12 n loglog n", res.Stats.Messages)
	}
}

func TestElectLeaderDeterministic(t *testing.T) {
	run := func() int {
		eng := sim.NewEngine(512, sim.Options{Seed: 155})
		res, err := ElectLeader(eng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Leader
	}
	if run() != run() {
		t.Fatal("election not deterministic")
	}
}

func TestBuildSpanningTree(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 156})
	res, err := BuildSpanningTree(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	span, err := forest.FromParents(res.Parent)
	if err != nil {
		t.Fatal(err)
	}
	if span.NumTrees() != 1 {
		t.Fatalf("got %d trees", span.NumTrees())
	}
	if !span.IsRoot(res.Leader) {
		t.Fatal("leader is not the tree root")
	}
	if span.NumMembers() != n {
		t.Fatalf("spanning tree covers %d of %d", span.NumMembers(), n)
	}
	// Depth O(log n): DRR height + star level (+ possibly the leader's
	// former ancestor chain).
	if float64(res.Depth) > 6*math.Log2(float64(n)) {
		t.Fatalf("depth %d too large", res.Depth)
	}
}

func TestBuildSpanningTreeWithCrashes(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 157, CrashFrac: 0.25})
	res, err := BuildSpanningTree(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	span, err := forest.FromParents(res.Parent)
	if err != nil {
		t.Fatal(err)
	}
	if span.NumMembers() != eng.NumAlive() {
		t.Fatalf("covers %d of %d alive", span.NumMembers(), eng.NumAlive())
	}
	for i := 0; i < n; i++ {
		if !eng.Alive(i) && res.Parent[i] != forest.NotMember {
			t.Fatalf("crashed node %d in spanning tree", i)
		}
	}
}

func BenchmarkElectLeader(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(4096, sim.Options{Seed: uint64(i)})
		if _, err := ElectLeader(eng, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
