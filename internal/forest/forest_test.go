package forest

import (
	"testing"
	"testing/quick"

	"drrgossip/internal/xrand"
)

// sample forest:
//
//	0 (root) -> children 1, 2; 1 -> child 3
//	4 (root) singleton
//	5 not a member
func sample(t *testing.T) *Forest {
	t.Helper()
	f, err := FromParents([]int{Root, 0, 0, 1, Root, NotMember})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBasicStructure(t *testing.T) {
	f := sample(t)
	if f.N() != 6 || f.NumMembers() != 5 || f.NumTrees() != 2 {
		t.Fatalf("N=%d members=%d trees=%d", f.N(), f.NumMembers(), f.NumTrees())
	}
	if !f.IsRoot(0) || !f.IsRoot(4) || f.IsRoot(1) {
		t.Fatal("root flags wrong")
	}
	if f.Member(5) {
		t.Fatal("node 5 should not be a member")
	}
	if !f.IsLeaf(3) || !f.IsLeaf(2) || f.IsLeaf(1) || f.IsLeaf(5) {
		t.Fatal("leaf flags wrong")
	}
	if got := f.Children(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Children(0) = %v", got)
	}
}

func TestRootOfAndDepth(t *testing.T) {
	f := sample(t)
	wantRoot := []int{0, 0, 0, 0, 4, NotMember}
	wantDepth := []int{0, 1, 1, 2, 0, 0}
	for i := 0; i < 6; i++ {
		if f.RootOf(i) != wantRoot[i] {
			t.Fatalf("RootOf(%d) = %d, want %d", i, f.RootOf(i), wantRoot[i])
		}
		if f.Depth(i) != wantDepth[i] {
			t.Fatalf("Depth(%d) = %d, want %d", i, f.Depth(i), wantDepth[i])
		}
	}
}

func TestSizesHeightsLargest(t *testing.T) {
	f := sample(t)
	sizes := f.TreeSizes()
	if sizes[0] != 4 || sizes[4] != 1 {
		t.Fatalf("TreeSizes = %v", sizes)
	}
	if f.TreeSize(0) != 4 || f.TreeSize(4) != 1 {
		t.Fatal("TreeSize wrong")
	}
	if f.MaxTreeSize() != 4 {
		t.Fatalf("MaxTreeSize = %d", f.MaxTreeSize())
	}
	if f.LargestRoot() != 0 {
		t.Fatalf("LargestRoot = %d", f.LargestRoot())
	}
	if f.Height(0) != 2 || f.Height(4) != 0 || f.MaxHeight() != 2 {
		t.Fatalf("heights wrong: %d %d %d", f.Height(0), f.Height(4), f.MaxHeight())
	}
}

func TestLeavesFirst(t *testing.T) {
	f := sample(t)
	order := f.LeavesFirst()
	if len(order) != 5 {
		t.Fatalf("LeavesFirst covered %d members", len(order))
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	// Every child must appear before its parent.
	for i := 0; i < f.N(); i++ {
		if p := f.Parent(i); p >= 0 && pos[i] > pos[p] {
			t.Fatalf("child %d after parent %d in %v", i, p, order)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := sample(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsCycles(t *testing.T) {
	cases := [][]int{
		{1, 0},          // 2-cycle
		{1, 2, 0},       // 3-cycle
		{Root, 2, 3, 1}, // cycle off a root component
		{0},             // self-parent
	}
	for i, parents := range cases {
		if _, err := FromParents(parents); err == nil {
			t.Fatalf("case %d: cycle accepted", i)
		}
	}
}

func TestRejectsBadParents(t *testing.T) {
	if _, err := FromParents([]int{Root, 7}); err == nil {
		t.Fatal("out-of-range parent accepted")
	}
	if _, err := FromParents([]int{NotMember, 0}); err == nil {
		t.Fatal("parent pointing at non-member accepted")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	f, err := FromParents([]int{})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 0 || f.MaxHeight() != 0 || f.MaxTreeSize() != 0 {
		t.Fatal("empty forest stats wrong")
	}
	f2, err := FromParents([]int{Root})
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumTrees() != 1 || f2.TreeSize(0) != 1 || f2.Height(0) != 0 {
		t.Fatal("singleton stats wrong")
	}
}

func TestLargestRootTieBreaksLow(t *testing.T) {
	// Two singleton trees: roots 0 and 1; tie must pick 0.
	f, err := FromParents([]int{Root, Root})
	if err != nil {
		t.Fatal(err)
	}
	if f.LargestRoot() != 0 {
		t.Fatalf("LargestRoot tie = %d, want 0", f.LargestRoot())
	}
}

func TestLargestRootEmptyPanics(t *testing.T) {
	f, _ := FromParents([]int{NotMember})
	defer func() {
		if recover() == nil {
			t.Fatal("LargestRoot on empty forest did not panic")
		}
	}()
	f.LargestRoot()
}

// randomParents builds a valid random forest parent vector by connecting
// each node to a lower-indexed node or making it a root; a suffix of nodes
// may be non-members.
func randomParents(n int, seed uint64) []int {
	rng := xrand.Derive(seed, 0xF0E, uint64(n))
	parents := make([]int, n)
	for i := range parents {
		switch {
		case rng.Float64() < 0.1:
			parents[i] = NotMember
		case i == 0 || rng.Float64() < 0.25:
			parents[i] = Root
		default:
			// Pick a lower member parent; fall back to Root.
			parents[i] = Root
			for try := 0; try < 5; try++ {
				p := rng.Intn(i)
				if parents[p] != NotMember {
					parents[i] = p
					break
				}
			}
		}
	}
	return parents
}

// Property: structural invariants hold for arbitrary valid forests.
func TestForestProperties(t *testing.T) {
	f := func(seed uint16, sz uint8) bool {
		n := int(sz%100) + 1
		parents := randomParents(n, uint64(seed))
		fo, err := FromParents(parents)
		if err != nil {
			t.Logf("unexpected build error: %v", err)
			return false
		}
		if fo.Validate() != nil {
			return false
		}
		// Tree sizes sum to member count.
		total := 0
		for _, s := range fo.TreeSizes() {
			total += s
		}
		if total != fo.NumMembers() {
			return false
		}
		// Every member's root is a root and reachable via parents.
		for i := 0; i < n; i++ {
			if !fo.Member(i) {
				continue
			}
			cur, steps := i, 0
			for fo.Parent(cur) >= 0 {
				cur = fo.Parent(cur)
				steps++
				if steps > n {
					return false
				}
			}
			if cur != fo.RootOf(i) || steps != fo.Depth(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFromParents(b *testing.B) {
	parents := randomParents(8192, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromParents(parents); err != nil {
			b.Fatal(err)
		}
	}
}
