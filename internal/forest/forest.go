// Package forest provides the disjoint-tree data structure produced by
// Phase I of DRR-gossip (the "ranking forest" F) and the structural
// invariants the paper's analysis relies on: acyclicity, tree sizes
// (Theorem 3), tree count (Theorem 2), and heights (Theorem 11).
//
// A forest is represented by a parent vector over nodes 0..n-1; crashed or
// otherwise absent nodes are marked NotMember and belong to no tree.
package forest

import (
	"errors"
	"fmt"
)

const (
	// Root marks a node with no parent (a tree root).
	Root = -1
	// NotMember marks a node outside the forest (e.g. crashed initially).
	NotMember = -2
)

// Forest is an immutable rooted forest. Build instances with FromParents.
type Forest struct {
	parent   []int
	children [][]int
	rootOf   []int // per-node root (NotMember for non-members)
	depth    []int // per-node depth from its root (0 at roots)
	roots    []int // sorted root list
	members  int
}

// FromParents validates a parent vector (entries: a parent id, Root, or
// NotMember) and builds the forest. It fails on cycles, on parents
// pointing to non-members, and on out-of-range entries.
func FromParents(parent []int) (*Forest, error) {
	n := len(parent)
	f := &Forest{
		parent:   append([]int(nil), parent...),
		children: make([][]int, n),
		rootOf:   make([]int, n),
		depth:    make([]int, n),
	}
	for i, p := range parent {
		switch {
		case p == Root:
			f.roots = append(f.roots, i)
			f.members++
		case p == NotMember:
		case p < 0 || p >= n:
			return nil, fmt.Errorf("forest: node %d has out-of-range parent %d", i, p)
		case p == i:
			return nil, fmt.Errorf("forest: node %d is its own parent", i)
		case parent[p] == NotMember:
			return nil, fmt.Errorf("forest: node %d has non-member parent %d", i, p)
		default:
			f.children[p] = append(f.children[p], i)
			f.members++
		}
	}
	// Resolve roots and depths iteratively with cycle detection: walk each
	// unresolved path once, marking as we return.
	const unresolved = -3
	for i := range f.rootOf {
		f.rootOf[i] = unresolved
	}
	var stack []int
	for i := 0; i < n; i++ {
		if f.rootOf[i] != unresolved {
			continue
		}
		if parent[i] == NotMember {
			f.rootOf[i] = NotMember
			continue
		}
		stack = stack[:0]
		cur := i
		for {
			if f.rootOf[cur] != unresolved {
				break // reached resolved region
			}
			if parent[cur] == Root {
				f.rootOf[cur] = cur
				f.depth[cur] = 0
				break
			}
			stack = append(stack, cur)
			if len(stack) > n {
				return nil, errors.New("forest: cycle detected")
			}
			cur = parent[cur]
			if parent[cur] == NotMember {
				return nil, fmt.Errorf("forest: path from %d leaves the forest at %d", i, cur)
			}
		}
		if f.rootOf[cur] == NotMember {
			return nil, fmt.Errorf("forest: path from %d reaches non-member %d", i, cur)
		}
		for k := len(stack) - 1; k >= 0; k-- {
			v := stack[k]
			p := parent[v]
			if f.rootOf[p] == unresolved {
				return nil, errors.New("forest: cycle detected")
			}
			f.rootOf[v] = f.rootOf[p]
			f.depth[v] = f.depth[p] + 1
		}
	}
	return f, nil
}

// N returns the number of node slots (members and non-members).
func (f *Forest) N() int { return len(f.parent) }

// NumMembers returns the number of forest members.
func (f *Forest) NumMembers() int { return f.members }

// Member reports whether node i belongs to the forest.
func (f *Forest) Member(i int) bool { return f.parent[i] != NotMember }

// Parent returns node i's parent, Root for roots, NotMember for
// non-members.
func (f *Forest) Parent(i int) int { return f.parent[i] }

// Children returns node i's children (sorted ascending by construction).
// The caller must not modify the returned slice.
func (f *Forest) Children(i int) []int { return f.children[i] }

// IsRoot reports whether node i is a tree root.
func (f *Forest) IsRoot(i int) bool { return f.parent[i] == Root }

// IsLeaf reports whether node i is a member with no children.
func (f *Forest) IsLeaf(i int) bool {
	return f.Member(i) && len(f.children[i]) == 0
}

// Roots returns the sorted list of tree roots. The caller must not modify
// it.
func (f *Forest) Roots() []int { return f.roots }

// NumTrees returns the number of trees.
func (f *Forest) NumTrees() int { return len(f.roots) }

// RootOf returns the root of node i's tree (NotMember for non-members).
func (f *Forest) RootOf(i int) int { return f.rootOf[i] }

// Depth returns node i's distance from its root (0 for roots and
// non-members).
func (f *Forest) Depth(i int) int {
	if !f.Member(i) {
		return 0
	}
	return f.depth[i]
}

// TreeSize returns the number of nodes in the tree rooted at root.
func (f *Forest) TreeSize(root int) int {
	size := 0
	for i := range f.rootOf {
		if f.rootOf[i] == root && f.Member(i) {
			size++
		}
	}
	return size
}

// TreeSizes returns a map from root to tree size.
func (f *Forest) TreeSizes() map[int]int {
	sizes := make(map[int]int, len(f.roots))
	for i, r := range f.rootOf {
		if r >= 0 && f.Member(i) {
			sizes[r]++
		}
	}
	return sizes
}

// MaxTreeSize returns the largest tree size (0 for an empty forest).
func (f *Forest) MaxTreeSize() int {
	m := 0
	for _, s := range f.TreeSizes() {
		if s > m {
			m = s
		}
	}
	return m
}

// LargestRoot returns the root of the largest tree, breaking ties by the
// smaller root id. It panics on an empty forest.
func (f *Forest) LargestRoot() int {
	if len(f.roots) == 0 {
		panic("forest: LargestRoot of empty forest")
	}
	sizes := f.TreeSizes()
	best, bestSize := -1, -1
	for _, r := range f.roots {
		if s := sizes[r]; s > bestSize || (s == bestSize && r < best) {
			best, bestSize = r, s
		}
	}
	return best
}

// Height returns the height of the tree rooted at root: the maximum depth
// among its members (0 for a singleton tree).
func (f *Forest) Height(root int) int {
	h := 0
	for i, r := range f.rootOf {
		if r == root && f.depth[i] > h {
			h = f.depth[i]
		}
	}
	return h
}

// MaxHeight returns the maximum tree height in the forest.
func (f *Forest) MaxHeight() int {
	h := 0
	for i, r := range f.rootOf {
		if r >= 0 && f.depth[i] > h {
			h = f.depth[i]
		}
	}
	return h
}

// LeavesFirst returns members ordered by decreasing depth (leaves before
// their parents): the schedule order for convergecast.
func (f *Forest) LeavesFirst() []int {
	maxD := 0
	for i := range f.depth {
		if f.Member(i) && f.depth[i] > maxD {
			maxD = f.depth[i]
		}
	}
	buckets := make([][]int, maxD+1)
	for i := range f.depth {
		if f.Member(i) {
			buckets[f.depth[i]] = append(buckets[f.depth[i]], i)
		}
	}
	out := make([]int, 0, f.members)
	for d := maxD; d >= 0; d-- {
		out = append(out, buckets[d]...)
	}
	return out
}

// RepairParents heals a parent vector after mid-run membership changes:
// dead nodes (per the alive predicate) become NotMember, and every live
// node whose parent is no longer a member — it died, or it was dead
// during the parent-decision step and has since rejoined with
// parent[p] == NotMember — is promoted to a root of its own (orphaned)
// subtree. It returns the number of promotions. The repaired vector is
// always a valid forest for FromParents: edges only ever point to
// member nodes. (The rejoin case is why aliveness alone is not enough:
// a node that crashed during Phase I and revived before the repair is
// alive but never joined the forest, and the chaos fuzzer found child
// edges into exactly such nodes; see internal/chaos
// testdata/regressions.txt.)
func RepairParents(parent []int, alive func(int) bool) int {
	promoted := 0
	for i, p := range parent {
		if p == NotMember {
			continue
		}
		if !alive(i) {
			parent[i] = NotMember
			continue
		}
		if p >= 0 && (!alive(p) || parent[p] == NotMember) {
			parent[i] = Root
			promoted++
		}
	}
	return promoted
}

// Repair returns a copy of the forest with crashed nodes removed and
// orphaned subtrees re-rooted (see RepairParents), plus the number of
// subtree promotions — the Phase I repair path for dynamic membership.
// When nothing died the receiver is returned unchanged.
func (f *Forest) Repair(alive func(int) bool) (*Forest, int) {
	dirty := false
	for i := range f.parent {
		if f.Member(i) && !alive(i) {
			dirty = true
			break
		}
	}
	if !dirty {
		return f, 0
	}
	parent := append([]int(nil), f.parent...)
	promoted := RepairParents(parent, alive)
	nf, err := FromParents(parent)
	if err != nil {
		// RepairParents only removes nodes and promotes orphans from an
		// already-valid forest, so this is unreachable.
		panic("forest: repair produced invalid forest: " + err.Error())
	}
	return nf, promoted
}

// Validate re-checks all structural invariants; it is used by property
// tests on protocol-constructed forests.
func (f *Forest) Validate() error {
	seen := 0
	for _, r := range f.roots {
		if !f.IsRoot(r) {
			return fmt.Errorf("forest: listed root %d is not a root", r)
		}
	}
	for i := 0; i < f.N(); i++ {
		if !f.Member(i) {
			continue
		}
		seen++
		r := f.rootOf[i]
		if r < 0 || !f.IsRoot(r) {
			return fmt.Errorf("forest: node %d has invalid root %d", i, r)
		}
		if p := f.parent[i]; p >= 0 {
			if f.depth[i] != f.depth[p]+1 {
				return fmt.Errorf("forest: depth mismatch at %d", i)
			}
			if f.rootOf[p] != r {
				return fmt.Errorf("forest: root mismatch along edge (%d,%d)", i, p)
			}
		}
	}
	if seen != f.members {
		return fmt.Errorf("forest: member count mismatch %d vs %d", seen, f.members)
	}
	return nil
}
