package forest

import "testing"

// Tests for the dynamic-membership repair path.

func TestRepairParents(t *testing.T) {
	// Tree: 0 <- 1 <- 2, 0 <- 3; separate root 4; non-member 5.
	parent := []int{Root, 0, 1, 0, Root, NotMember}
	alive := func(i int) bool { return i != 1 }
	promoted := RepairParents(parent, alive)
	if promoted != 1 {
		t.Fatalf("promoted = %d, want 1 (node 2)", promoted)
	}
	want := []int{Root, NotMember, Root, 0, Root, NotMember}
	for i := range want {
		if parent[i] != want[i] {
			t.Fatalf("parent[%d] = %d, want %d", i, parent[i], want[i])
		}
	}
	if _, err := FromParents(parent); err != nil {
		t.Fatalf("repaired vector invalid: %v", err)
	}
}

func TestForestRepair(t *testing.T) {
	f, err := FromParents([]int{Root, 0, 1, 1, Root, 4, NotMember})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing dead: same forest back, zero promotions.
	same, promoted := f.Repair(func(int) bool { return true })
	if same != f || promoted != 0 {
		t.Fatal("no-op repair rebuilt the forest")
	}
	// Kill node 1: its children 2 and 3 become roots of their own trees.
	nf, promoted := f.Repair(func(i int) bool { return i != 1 })
	if promoted != 2 {
		t.Fatalf("promoted = %d, want 2", promoted)
	}
	if nf.Member(1) {
		t.Fatal("dead node still a member")
	}
	if !nf.IsRoot(2) || !nf.IsRoot(3) {
		t.Fatal("orphaned children not promoted to roots")
	}
	if nf.NumTrees() != 4 { // 0, 2, 3, 4
		t.Fatalf("NumTrees = %d, want 4", nf.NumTrees())
	}
	if nf.RootOf(5) != 4 {
		t.Fatal("untouched tree disturbed")
	}
	if err := nf.Validate(); err != nil {
		t.Fatalf("repaired forest invalid: %v", err)
	}
	// The original forest is untouched (Repair copies).
	if !f.Member(1) || f.NumTrees() != 2 {
		t.Fatal("Repair mutated the receiver")
	}
}

func TestForestRepairChain(t *testing.T) {
	// Chain 0 <- 1 <- 2 <- 3 with both 1 and 2 dead: 3 must root itself.
	f, err := FromParents([]int{Root, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	nf, promoted := f.Repair(func(i int) bool { return i == 0 || i == 3 })
	if promoted != 1 {
		t.Fatalf("promoted = %d, want 1", promoted)
	}
	if !nf.IsRoot(3) || nf.Member(1) || nf.Member(2) || !nf.IsRoot(0) {
		t.Fatalf("chain repair wrong: parents %v %v %v %v",
			nf.Parent(0), nf.Parent(1), nf.Parent(2), nf.Parent(3))
	}
}
