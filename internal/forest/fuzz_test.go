package forest

import "testing"

// FuzzFromParents checks that arbitrary parent vectors either fail
// validation or produce a forest whose invariants hold — FromParents must
// never accept a malformed structure or panic.
func FuzzFromParents(f *testing.F) {
	f.Add([]byte{0xFF, 0x00, 0x01})       // Root, then children of 0 and 1
	f.Add([]byte{0x01, 0x00})             // 2-cycle
	f.Add([]byte{0xFE, 0xFF, 0x00})       // NotMember, Root, child
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // all roots
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		parents := make([]int, len(data))
		for i, b := range data {
			switch b {
			case 0xFF:
				parents[i] = Root
			case 0xFE:
				parents[i] = NotMember
			default:
				parents[i] = int(b) // may be out of range: must be rejected
			}
		}
		fo, err := FromParents(parents)
		if err != nil {
			return // rejected malformed input: fine
		}
		if err := fo.Validate(); err != nil {
			t.Fatalf("accepted forest fails validation: %v (parents %v)", err, parents)
		}
		total := 0
		for _, s := range fo.TreeSizes() {
			total += s
		}
		if total != fo.NumMembers() {
			t.Fatalf("tree sizes inconsistent for %v", parents)
		}
	})
}
