package kempe

import (
	"math"
	"testing"

	"drrgossip/internal/agg"
	"drrgossip/internal/chord"
	"drrgossip/internal/sim"
)

func TestPushMaxConverges(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 71})
	values := agg.GenUniform(n, -100, 100, 1)
	res, err := PushMax(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	for i, v := range res.Estimates {
		if v != want {
			t.Fatalf("node %d estimate %v, want %v", i, v, want)
		}
	}
}

func TestPushMaxSpikePlacement(t *testing.T) {
	// Adversarial: a single spike must still reach everyone.
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 72})
	values := agg.GenSpike(n, 999, 2)
	res, err := PushMax(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Estimates {
		if v != 999 {
			t.Fatalf("node %d missed the spike: %v", i, v)
		}
	}
}

func TestPushMaxMessageComplexity(t *testing.T) {
	// Exactly n alive messages per round: Θ(n log n) total.
	n := 4096
	eng := sim.NewEngine(n, sim.Options{Seed: 73})
	values := agg.GenUniform(n, 0, 1, 3)
	res, err := PushMax(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rounds := int64(res.Stats.Rounds)
	if res.Stats.Messages != rounds*int64(n) {
		t.Fatalf("messages %d != rounds %d * n", res.Stats.Messages, rounds)
	}
	logn := math.Log2(float64(n))
	if float64(rounds) < logn || float64(rounds) > 8*logn {
		t.Fatalf("rounds %d not Θ(log n)", rounds)
	}
}

func TestPushSumConverges(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 74})
	values := agg.GenUniform(n, 0, 1000, 4)
	res, err := PushSum(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	for i, v := range res.Estimates {
		if e := agg.RelError(v, want); e > 1e-6 {
			t.Fatalf("node %d estimate %v, want %v (rel err %v)", i, v, want, e)
		}
	}
}

func TestPushSumMassConservation(t *testing.T) {
	n := 512
	eng := sim.NewEngine(n, sim.Options{Seed: 75})
	values := agg.GenSigned(n, 10, 5)
	res, err := PushSum(eng, values, Options{Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	// After only 5 rounds estimates differ, but with zero loss the mass
	// identities ΣS = Σ values and ΣW = n must hold exactly.
	var sTot, wTot float64
	for i := 0; i < n; i++ {
		sTot += res.S[i]
		wTot += res.W[i]
	}
	if math.Abs(sTot-agg.Exact(agg.Sum, values, 0)) > 1e-9 {
		t.Fatalf("value mass drifted: %v", sTot)
	}
	if math.Abs(wTot-float64(n)) > 1e-9 {
		t.Fatalf("weight mass drifted: %v", wTot)
	}
}

func TestPushSumWithCrashes(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 76, CrashFrac: 0.25})
	values := agg.GenUniform(n, 0, 100, 6)
	res, err := PushSum(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, agg.Subset(values, eng.AliveIDs()), 0)
	for i, v := range res.Estimates {
		if !eng.Alive(i) {
			if !math.IsNaN(v) {
				t.Fatalf("crashed node %d has estimate", i)
			}
			continue
		}
		if e := agg.RelError(v, want); e > 1e-4 {
			t.Fatalf("node %d estimate %v, want %v", i, v, want)
		}
	}
}

func TestPushSumUnderLoss(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 77, Loss: 0.1})
	values := agg.GenUniform(n, 0, 100, 7)
	res, err := PushSum(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	for i, v := range res.Estimates {
		if e := agg.RelError(v, want); e > 0.05 {
			t.Fatalf("node %d estimate %v vs %v under loss", i, v, want)
		}
	}
}

func TestPushMaxOnChord(t *testing.T) {
	n := 512
	ring, err := chord.New(n, chord.Options{Bits: 30})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(n, sim.Options{Seed: 78})
	values := agg.GenUniform(n, 0, 100, 8)
	res, err := PushMaxOnChord(eng, ring, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	for i, v := range res.Estimates {
		if v != want {
			t.Fatalf("node %d estimate %v, want %v", i, v, want)
		}
	}
	// Θ(n log^2 n) messages.
	logn := math.Log2(float64(n))
	msgs := float64(res.Stats.Messages)
	if msgs < float64(n)*logn || msgs > 40*float64(n)*logn*logn {
		t.Fatalf("chord push-max messages %v out of Θ(n log^2 n) envelope", msgs)
	}
}

func TestPushSumOnChord(t *testing.T) {
	n := 256
	ring, err := chord.New(n, chord.Options{Bits: 30})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(n, sim.Options{Seed: 79})
	values := agg.GenUniform(n, 0, 100, 9)
	res, err := PushSumOnChord(eng, ring, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	for i, v := range res.Estimates {
		if e := agg.RelError(v, want); e > 1e-5 {
			t.Fatalf("node %d estimate %v, want %v", i, v, want)
		}
	}
}

func TestChordBaselineValidation(t *testing.T) {
	ring, err := chord.New(64, chord.Options{Bits: 20})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(32, sim.Options{Seed: 80})
	if _, err := PushMaxOnChord(eng, ring, make([]float64, 32), Options{}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	eng2 := sim.NewEngine(64, sim.Options{Seed: 81, CrashFrac: 0.5})
	if _, err := PushMaxOnChord(eng2, ring, make([]float64, 64), Options{}); err == nil {
		t.Fatal("crashed chord accepted")
	}
}

func TestValueLengthValidation(t *testing.T) {
	eng := sim.NewEngine(16, sim.Options{Seed: 82})
	if _, err := PushMax(eng, make([]float64, 4), Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := PushSum(eng, make([]float64, 4), Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func BenchmarkPushSum(b *testing.B) {
	n := 4096
	values := agg.GenUniform(n, 0, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(n, sim.Options{Seed: uint64(i)})
		if _, err := PushSum(eng, values, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRankBaseline(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 83})
	values := agg.GenUniform(n, 0, 100, 10)
	q := 37.5
	res, err := Rank(eng, values, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Rank, values, q)
	for i, v := range res.Estimates {
		if agg.RelError(v, want) > 1e-4 {
			t.Fatalf("node %d rank %v, want %v", i, v, want)
		}
	}
}

func TestRankBaselineWithCrashes(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 84, CrashFrac: 0.2})
	values := agg.GenUniform(n, 0, 100, 11)
	q := 50.0
	res, err := Rank(eng, values, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Rank, agg.Subset(values, eng.AliveIDs()), q)
	for i, v := range res.Estimates {
		if !eng.Alive(i) {
			continue
		}
		if agg.RelError(v, want) > 1e-3 {
			t.Fatalf("node %d rank %v, want %v", i, v, want)
		}
	}
}
