// Package kempe implements the uniform-gossip baseline of Kempe, Dobra
// and Gehrke (FOCS 2003), the algorithm Table 1 compares DRR-gossip
// against: Push-Sum for Average/Sum and Push-Max for Max/Min.
//
// Every node gossips every round, so the protocol is address-oblivious,
// takes O(log n) rounds, and uses Θ(n log n) messages — time-optimal but a
// log n / log log n factor more messages than DRR-gossip (and, by
// Theorem 15, message-optimal among address-oblivious algorithms).
//
// The Chord variants (PushSumOnChord, PushMaxOnChord) route each gossip
// message with the overlay's O(log n)-hop protocol, giving the
// O(log^2 n) time and O(n log^2 n) messages that Section 4 contrasts
// with DRR-gossip's O(n log n) messages on Chord.
package kempe

import (
	"fmt"
	"math"

	"drrgossip/internal/chord"
	"drrgossip/internal/sim"
)

const (
	kindShare uint8 = 0x51
	kindMax   uint8 = 0x52
)

// Options tune the baselines; zero values pick paper-scaled defaults.
type Options struct {
	// Rounds is the number of gossip rounds (0 = O(log n) defaults:
	// 2 log n + 12 for Push-Max, 4 log n + 24 for Push-Sum, inflated for
	// loss and crashes).
	Rounds int
}

// Result reports a baseline run.
type Result struct {
	// Estimates is each node's final estimate (NaN for crashed nodes).
	Estimates []float64
	// S and W are the final push-sum components (nil for Push-Max); with
	// zero loss they satisfy ΣS = Σ values and ΣW = number of alive nodes.
	S, W  []float64
	Stats sim.Counters
}

func ceilLog2(n int) int {
	l := int(math.Ceil(math.Log2(float64(n))))
	if l < 1 {
		l = 1
	}
	return l
}

func inflate(base int, eng *sim.Engine) int {
	alive := float64(eng.NumAlive()) / float64(eng.N())
	loss := eng.Loss()
	if loss > 0.45 {
		loss = 0.45
	}
	return int(math.Ceil(float64(base)/((1-2*loss)*alive))) + 1
}

// PushMax runs uniform push gossip for Max: every round every node sends
// its current maximum to a uniformly random other node.
func PushMax(eng *sim.Engine, values []float64, opts Options) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("kempe: %d values for %d nodes", len(values), eng.N())
	}
	n := eng.N()
	rounds := opts.Rounds
	if rounds == 0 {
		rounds = inflate(2*ceilLog2(n)+12, eng)
	}
	start := eng.Stats()
	est := make([]float64, n)
	for i := range est {
		if eng.Alive(i) {
			est[i] = values[i]
		} else {
			est[i] = math.NaN()
		}
	}
	for t := 0; t < rounds; t++ {
		for i := 0; i < n; i++ {
			if !eng.Alive(i) {
				continue
			}
			target := eng.RNG(i).IntnOther(n, i)
			eng.Send(i, target, sim.Payload{Kind: kindMax, A: est[i]})
		}
		eng.Tick()
		sim.ParallelFor(n, func(i int) {
			if !eng.Alive(i) {
				return
			}
			for _, m := range eng.Inbox(i) {
				if m.Pay.Kind == kindMax && m.Pay.A > est[i] {
					est[i] = m.Pay.A
				}
			}
		})
	}
	return &Result{Estimates: est, Stats: eng.Stats().Sub(start)}, nil
}

// PushSum runs the Push-Sum protocol for the Average: every node keeps
// (s, w), halves both each round, keeps one half and sends the other to a
// uniformly random node; s/w converges to the global average at every
// node in O(log n + log 1/ε) rounds.
//
// A share aimed at an initially-crashed node is retained (the call is
// never established); a share lost to link failure destroys mass, exactly
// as in the DRR-gossip Phase III analysis.
func PushSum(eng *sim.Engine, values []float64, opts Options) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("kempe: %d values for %d nodes", len(values), eng.N())
	}
	n := eng.N()
	rounds := opts.Rounds
	if rounds == 0 {
		rounds = inflate(4*ceilLog2(n)+24, eng)
	}
	start := eng.Stats()
	s := make([]float64, n)
	w := make([]float64, n)
	for i := range s {
		if eng.Alive(i) {
			s[i] = values[i]
			w[i] = 1
		}
	}
	for t := 0; t < rounds; t++ {
		for i := 0; i < n; i++ {
			if !eng.Alive(i) {
				continue
			}
			target := eng.RNG(i).IntnOther(n, i)
			if !eng.Alive(target) {
				eng.Send(i, target, sim.Payload{Kind: kindShare}) // failed call attempt
				continue
			}
			s[i] /= 2
			w[i] /= 2
			eng.Send(i, target, sim.Payload{Kind: kindShare, A: s[i], B: w[i]})
		}
		eng.Tick()
		sim.ParallelFor(n, func(i int) {
			if !eng.Alive(i) {
				return
			}
			for _, m := range eng.Inbox(i) {
				if m.Pay.Kind == kindShare {
					s[i] += m.Pay.A
					w[i] += m.Pay.B
				}
			}
		})
	}
	est := make([]float64, n)
	for i := range est {
		switch {
		case !eng.Alive(i):
			est[i] = math.NaN()
		case w[i] != 0:
			est[i] = s[i] / w[i]
		default:
			est[i] = math.NaN()
		}
	}
	return &Result{Estimates: est, S: s, W: w, Stats: eng.Stats().Sub(start)}, nil
}

// PushMaxOnChord is PushMax where every gossip message is routed over the
// Chord overlay (uniform random target via the sampling protocol).
// Time O(log^2 n), messages O(n log^2 n).
func PushMaxOnChord(eng *sim.Engine, ring *chord.Ring, values []float64, opts Options) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("kempe: %d values for %d nodes", len(values), eng.N())
	}
	if ring.N() != eng.N() {
		return nil, fmt.Errorf("kempe: ring has %d nodes, engine %d", ring.N(), eng.N())
	}
	if eng.NumAlive() != eng.N() {
		return nil, fmt.Errorf("kempe: chord baseline requires all nodes alive")
	}
	n := eng.N()
	iters := opts.Rounds
	if iters == 0 {
		iters = inflate(2*ceilLog2(n)+12, eng)
	}
	ticks := 2*ceilLog2(n) + 2
	start := eng.Stats()
	est := append([]float64(nil), values...)
	for t := 0; t < iters; t++ {
		for i := 0; i < n; i++ {
			_, path, totalHops := ring.Sample(eng.RNG(i), i)
			if extra := totalHops - len(path); extra > 0 {
				eng.Charge(int64(extra))
			}
			if len(path) == 0 {
				continue
			}
			eng.SendRouted(i, path, sim.Payload{Kind: kindMax, A: est[i]})
		}
		for k := 0; k < ticks; k++ {
			eng.Tick()
			for i := 0; i < n; i++ {
				for _, m := range eng.Inbox(i) {
					if m.Pay.Kind == kindMax && m.Pay.A > est[i] {
						est[i] = m.Pay.A
					}
				}
			}
		}
	}
	return &Result{Estimates: est, Stats: eng.Stats().Sub(start)}, nil
}

// PushSumOnChord is PushSum with Chord-routed shares. Time O(log^2 n),
// messages O(n log^2 n).
func PushSumOnChord(eng *sim.Engine, ring *chord.Ring, values []float64, opts Options) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("kempe: %d values for %d nodes", len(values), eng.N())
	}
	if ring.N() != eng.N() {
		return nil, fmt.Errorf("kempe: ring has %d nodes, engine %d", ring.N(), eng.N())
	}
	if eng.NumAlive() != eng.N() {
		return nil, fmt.Errorf("kempe: chord baseline requires all nodes alive")
	}
	n := eng.N()
	iters := opts.Rounds
	if iters == 0 {
		iters = inflate(4*ceilLog2(n)+24, eng)
	}
	ticks := 2*ceilLog2(n) + 2
	start := eng.Stats()
	s := append([]float64(nil), values...)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	for t := 0; t < iters; t++ {
		for i := 0; i < n; i++ {
			_, path, totalHops := ring.Sample(eng.RNG(i), i)
			if extra := totalHops - len(path); extra > 0 {
				eng.Charge(int64(extra))
			}
			if len(path) == 0 {
				continue
			}
			s[i] /= 2
			w[i] /= 2
			eng.SendRouted(i, path, sim.Payload{Kind: kindShare, A: s[i], B: w[i]})
		}
		for k := 0; k < ticks; k++ {
			eng.Tick()
			for i := 0; i < n; i++ {
				for _, m := range eng.Inbox(i) {
					if m.Pay.Kind == kindShare {
						s[i] += m.Pay.A
						w[i] += m.Pay.B
					}
				}
			}
		}
	}
	est := make([]float64, n)
	for i := range est {
		if w[i] != 0 {
			est[i] = s[i] / w[i]
		} else {
			est[i] = math.NaN()
		}
	}
	return &Result{Estimates: est, Stats: eng.Stats().Sub(start)}, nil
}

// Rank computes Rank(q) = |{alive i : values[i] <= q}| with uniform
// gossip, following Kempe et al.'s reduction of quantile/rank queries to
// push-sum over indicator values scaled by a node count: every node runs
// push-sum on (indicator, 1/n-distinguished weight)... in the
// address-oblivious setting nodes cannot designate a distinguished peer,
// so the standard form computes the indicator average and multiplies by
// the (globally known) network size n. With crashes the count of alive
// nodes is estimated by a second push-sum over membership indicators.
func Rank(eng *sim.Engine, values []float64, q float64, opts Options) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("kempe: %d values for %d nodes", len(values), eng.N())
	}
	ind := make([]float64, len(values))
	for i, v := range values {
		if v <= q {
			ind[i] = 1
		}
	}
	avgRes, err := PushSum(eng, ind, opts)
	if err != nil {
		return nil, err
	}
	// The indicator average times the alive count is the rank; alive
	// count = n when there are no crashes, else estimated by averaging
	// constant-1 values (trivially 1) times... the engine's alive count
	// is global knowledge here, matching the paper's assumption that n
	// is known.
	alive := float64(eng.NumAlive())
	est := make([]float64, len(avgRes.Estimates))
	for i, v := range avgRes.Estimates {
		est[i] = v * alive
	}
	return &Result{Estimates: est, S: avgRes.S, W: avgRes.W, Stats: avgRes.Stats}, nil
}
