package convergecast

import (
	"math"
	"testing"
	"testing/quick"

	"drrgossip/internal/agg"
	"drrgossip/internal/drr"
	"drrgossip/internal/forest"
	"drrgossip/internal/sim"
)

// buildForest runs DRR to obtain a realistic ranking forest.
func buildForest(t *testing.T, eng *sim.Engine) *forest.Forest {
	t.Helper()
	res, err := drr.Run(eng, drr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Forest
}

// treeValues collects the member values of the tree rooted at r.
func treeValues(f *forest.Forest, values []float64, r int) []float64 {
	var vs []float64
	for i := 0; i < f.N(); i++ {
		if f.Member(i) && f.RootOf(i) == r {
			vs = append(vs, values[i])
		}
	}
	return vs
}

func TestMaxExact(t *testing.T) {
	eng := sim.NewEngine(1024, sim.Options{Seed: 1})
	f := buildForest(t, eng)
	values := agg.GenUniform(1024, -50, 50, 7)
	got, stats, err := Max(eng, f, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Roots() {
		want := agg.Exact(agg.Max, treeValues(f, values, r), 0)
		if got[r] != want {
			t.Fatalf("root %d: max = %v, want %v", r, got[r], want)
		}
	}
	// O(n) messages: every non-root sends once + ack.
	nonRoots := int64(f.NumMembers() - f.NumTrees())
	if stats.Messages != 2*nonRoots {
		t.Fatalf("messages = %d, want %d", stats.Messages, 2*nonRoots)
	}
}

func TestMinExact(t *testing.T) {
	eng := sim.NewEngine(512, sim.Options{Seed: 2})
	f := buildForest(t, eng)
	values := agg.GenSigned(512, 30, 8)
	got, _, err := Min(eng, f, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Roots() {
		want := agg.Exact(agg.Min, treeValues(f, values, r), 0)
		if got[r] != want {
			t.Fatalf("root %d: min = %v, want %v", r, got[r], want)
		}
	}
}

func TestSumExact(t *testing.T) {
	eng := sim.NewEngine(1024, sim.Options{Seed: 3})
	f := buildForest(t, eng)
	values := agg.GenUniform(1024, 0, 10, 9)
	got, _, err := Sum(eng, f, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	totalCount := 0.0
	for _, r := range f.Roots() {
		tv := treeValues(f, values, r)
		wantSum := agg.Exact(agg.Sum, tv, 0)
		if math.Abs(got[r].Sum-wantSum) > 1e-9 {
			t.Fatalf("root %d: sum = %v, want %v", r, got[r].Sum, wantSum)
		}
		if got[r].Count != float64(len(tv)) {
			t.Fatalf("root %d: count = %v, want %d", r, got[r].Count, len(tv))
		}
		totalCount += got[r].Count
	}
	if totalCount != float64(f.NumMembers()) {
		t.Fatalf("tree sizes sum to %v, want %d", totalCount, f.NumMembers())
	}
}

func TestSumExactUnderLoss(t *testing.T) {
	// The ack/retransmit scheme must make tree aggregates exact even at
	// the paper's maximal δ = 1/8.
	eng := sim.NewEngine(2048, sim.Options{Seed: 4, Loss: 0.125})
	f := buildForest(t, eng)
	values := agg.GenUniform(2048, 0, 100, 10)
	got, stats, err := Sum(eng, f, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Roots() {
		tv := treeValues(f, values, r)
		if math.Abs(got[r].Sum-agg.Exact(agg.Sum, tv, 0)) > 1e-9 {
			t.Fatalf("root %d sum wrong under loss", r)
		}
	}
	if stats.Drops == 0 {
		t.Fatal("expected some drops at δ = 1/8")
	}
}

func TestRoundsBoundedByHeight(t *testing.T) {
	eng := sim.NewEngine(4096, sim.Options{Seed: 5})
	f := buildForest(t, eng)
	values := agg.GenUniform(4096, 0, 1, 11)
	_, stats, err := Max(eng, f, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds > f.MaxHeight()+1 {
		t.Fatalf("lossless convergecast took %d rounds, height %d", stats.Rounds, f.MaxHeight())
	}
}

func TestBroadcastValue(t *testing.T) {
	eng := sim.NewEngine(1024, sim.Options{Seed: 6})
	f := buildForest(t, eng)
	perRoot := make(map[int]float64)
	for _, r := range f.Roots() {
		perRoot[r] = float64(r) * 1.5
	}
	got, stats, err := BroadcastValue(eng, f, perRoot, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.N(); i++ {
		want := float64(f.RootOf(i)) * 1.5
		if got[i] != want {
			t.Fatalf("node %d got %v, want %v", i, got[i], want)
		}
	}
	// O(n) messages: each non-root receives one delivery + one ack.
	nonRoots := int64(f.NumMembers() - f.NumTrees())
	if stats.Messages != 2*nonRoots {
		t.Fatalf("messages = %d, want %d", stats.Messages, 2*nonRoots)
	}
}

func TestBroadcastRootAddr(t *testing.T) {
	eng := sim.NewEngine(2048, sim.Options{Seed: 7, Loss: 0.1})
	f := buildForest(t, eng)
	got, _, err := BroadcastRootAddr(eng, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.N(); i++ {
		if !f.Member(i) {
			if got[i] != -1 {
				t.Fatalf("non-member %d got root %d", i, got[i])
			}
			continue
		}
		if got[i] != f.RootOf(i) {
			t.Fatalf("node %d learned root %d, want %d", i, got[i], f.RootOf(i))
		}
	}
}

func TestBroadcastMissingRootPayload(t *testing.T) {
	eng := sim.NewEngine(64, sim.Options{Seed: 8})
	f := buildForest(t, eng)
	_, _, err := BroadcastValue(eng, f, map[int]float64{}, Options{})
	if err == nil {
		t.Fatal("missing root payload accepted")
	}
}

func TestWithCrashes(t *testing.T) {
	eng := sim.NewEngine(1024, sim.Options{Seed: 9, CrashFrac: 0.25, Loss: 0.05})
	f := buildForest(t, eng)
	values := agg.GenUniform(1024, 0, 10, 12)
	got, _, err := Sum(eng, f, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, sc := range got {
		total += sc.Count
	}
	if total != float64(eng.NumAlive()) {
		t.Fatalf("counted %v nodes, alive %d", total, eng.NumAlive())
	}
}

func TestSizeMismatch(t *testing.T) {
	eng := sim.NewEngine(10, sim.Options{Seed: 1})
	f, err := forest.FromParents([]int{forest.Root, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Max(eng, f, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestHandBuiltChain(t *testing.T) {
	// Chain 3 -> 2 -> 1 -> 0(root): strictly sequential aggregation.
	f, err := forest.FromParents([]int{forest.Root, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(4, sim.Options{Seed: 10})
	got, stats, err := Sum(eng, f, []float64{1, 2, 3, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Sum != 10 || got[0].Count != 4 {
		t.Fatalf("chain sum = %+v", got[0])
	}
	// Depth-3 chain completes in exactly 3 lossless rounds.
	if stats.Rounds != 3 {
		t.Fatalf("chain rounds = %d, want 3", stats.Rounds)
	}
}

// Property: for random forests and values, convergecast sums match exact
// per-tree aggregation, and broadcast reaches every member.
func TestConvergecastProperty(t *testing.T) {
	f := func(seed uint16) bool {
		n := 128
		eng := sim.NewEngine(n, sim.Options{Seed: uint64(seed), Loss: 0.05})
		fo := func() *forest.Forest {
			res, err := drr.Run(eng, drr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return res.Forest
		}()
		values := agg.GenSigned(n, 20, uint64(seed)+1)
		sums, _, err := Sum(eng, fo, values, Options{})
		if err != nil {
			return false
		}
		grand := 0.0
		for _, sc := range sums {
			grand += sc.Sum
		}
		want := agg.Exact(agg.Sum, values, 0)
		return math.Abs(grand-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConvergecastSum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(4096, sim.Options{Seed: uint64(i)})
		res, err := drr.Run(eng, drr.Options{})
		if err != nil {
			b.Fatal(err)
		}
		values := agg.GenUniform(4096, 0, 1, uint64(i))
		if _, _, err := Sum(eng, res.Forest, values, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMomentsExact(t *testing.T) {
	eng := sim.NewEngine(1024, sim.Options{Seed: 31})
	f := buildForest(t, eng)
	values := agg.GenSigned(1024, 10, 32)
	got, _, err := Moments(eng, f, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Roots() {
		tv := treeValues(f, values, r)
		wantSum := agg.Exact(agg.Sum, tv, 0)
		wantSum2 := 0.0
		for _, v := range tv {
			wantSum2 += v * v
		}
		mv := got[r]
		if math.Abs(mv.Sum-wantSum) > 1e-9 || math.Abs(mv.Sum2-wantSum2) > 1e-9 {
			t.Fatalf("root %d moments = %+v, want sum %v sum2 %v", r, mv, wantSum, wantSum2)
		}
		if mv.Count != float64(len(tv)) {
			t.Fatalf("root %d count = %v, want %d", r, mv.Count, len(tv))
		}
	}
}

func TestMomentsUnderLoss(t *testing.T) {
	eng := sim.NewEngine(512, sim.Options{Seed: 33, Loss: 0.125})
	f := buildForest(t, eng)
	values := agg.GenUniform(512, 0, 10, 34)
	got, _, err := Moments(eng, f, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, mv := range got {
		total += mv.Count
	}
	if total != float64(f.NumMembers()) {
		t.Fatalf("counts sum to %v, want %d", total, f.NumMembers())
	}
}
