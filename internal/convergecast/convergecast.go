// Package convergecast implements Phase II of DRR-gossip (Algorithms 2
// and 3): upward aggregation of each ranking tree's local aggregate at its
// root, and the downward broadcast that follows (root addresses after
// Phase I, final aggregates after Phase III).
//
// Loss handling follows the paper's remark that lossy links are tolerated
// by repeated calls: a child re-sends its contribution every round until
// the parent acknowledges it; the parent merges idempotently, so a
// retransmission after a lost ack cannot double-count. With δ < 1/8 every
// edge succeeds within a few attempts whp, preserving the O(n) message and
// O(max tree size) time bounds of the phase.
package convergecast

import (
	"errors"
	"fmt"
	"math"

	"drrgossip/internal/bitset"
	"drrgossip/internal/forest"
	"drrgossip/internal/sim"
)

// Options tune Phase II.
type Options struct {
	// ExtraRounds pads the round cap beyond the lossless minimum to absorb
	// retransmissions. 0 means 60 (overall failure odds ~ n·(2δ)^60).
	ExtraRounds int
}

func (o Options) extra() int {
	if o.ExtraRounds == 0 {
		return 60
	}
	return o.ExtraRounds
}

// SumCount is the (value-sum, size-count) vector of Algorithm 3.
type SumCount struct {
	Sum   float64
	Count float64
}

// ErrIncomplete reports that some tree failed to finish within the round
// cap (practically impossible for δ < 1/8 with the default padding).
var ErrIncomplete = errors.New("convergecast: phase did not complete within its round budget")

const (
	kindUp   uint8 = 0x21
	kindDown uint8 = 0x22
)

// mergeFunc folds a child's contribution into the accumulator payload
// (fields A, B, C carry the aggregate vector; Kind and X are managed by
// the transport).
type mergeFunc func(acc, in sim.Payload) sim.Payload

// up runs the generic upward aggregation and returns per-root payload
// accumulators. Liveness is re-evaluated every round so that mid-run
// crashes (dynamic membership) degrade the result instead of stalling
// the phase: a dead child is no longer waited for, a node with a dead
// parent stops retrying, and under an active fault regime an incomplete
// phase returns the partial accumulators rather than ErrIncomplete.
func up(eng *sim.Engine, f *forest.Forest, init []sim.Payload, merge mergeFunc, opts Options) (map[int]sim.Payload, sim.Counters, error) {
	n := eng.N()
	if f.N() != n {
		return nil, sim.Counters{}, fmt.Errorf("convergecast: forest has %d nodes, engine %d", f.N(), n)
	}
	start := eng.Stats()
	acc := append([]sim.Payload(nil), init...)
	merged := bitset.New(n) // child -> contribution registered at parent
	acked := bitset.New(n)  // child -> knows it was registered
	// expects reports whether node i still owes its parent a delivery:
	// alive, unacked, with an alive parent to deliver to.
	expects := func(i int) bool {
		return f.Member(i) && !f.IsRoot(i) && !acked.Test(i) &&
			eng.Alive(i) && eng.Alive(f.Parent(i))
	}
	// ready reports whether node i has heard from every child it can
	// still hear from (dead children are no longer waited for).
	ready := func(i int) bool {
		for _, c := range f.Children(i) {
			if !merged.Test(c) && eng.Alive(c) {
				return false
			}
		}
		return true
	}
	calls := make([]sim.Call, n)
	remaining := 0
	roundCap := f.MaxHeight() + opts.extra()
	for round := 0; round < roundCap; round++ {
		remaining = 0
		for i := 0; i < n; i++ {
			if expects(i) {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		eng.Tick()
		for i := 0; i < n; i++ {
			calls[i] = sim.Call{}
			if !expects(i) || !ready(i) {
				continue
			}
			pay := acc[i]
			pay.Kind = kindUp
			pay.X = int64(i)
			calls[i] = sim.Call{Active: true, To: f.Parent(i), Pay: pay}
		}
		eng.ResolveCalls(calls,
			func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
				if !merged.Test(caller) {
					merged.Set(caller)
					acc[callee] = merge(acc[callee], req)
				}
				return sim.Payload{Kind: kindUp}, true
			},
			func(caller int, resp sim.Payload) {
				acked.Set(caller)
			})
	}
	// Recount after the loop: the final acks may have landed during the
	// last permitted round, after this iteration's count was taken.
	remaining = 0
	for i := 0; i < n; i++ {
		if expects(i) {
			remaining++
		}
	}
	stats := eng.Stats().Sub(start)
	if remaining > 0 && !eng.Faulty() {
		return nil, stats, ErrIncomplete
	}
	out := make(map[int]sim.Payload, f.NumTrees())
	for _, r := range f.Roots() {
		out[r] = acc[r]
	}
	return out, stats, nil
}

// valueInit builds per-node payload accumulators with A = value.
func valueInit(f *forest.Forest, values []float64, withCount, withSquare bool) []sim.Payload {
	init := make([]sim.Payload, len(values))
	for i, v := range values {
		init[i].A = v
		if withSquare {
			init[i].B = v * v
		}
		if withCount && f.Member(i) {
			init[i].C = 1
		}
	}
	return init
}

// Max runs Convergecast-max (Algorithm 2): each root learns the maximum
// value in its tree.
func Max(eng *sim.Engine, f *forest.Forest, values []float64, opts Options) (map[int]float64, sim.Counters, error) {
	res, stats, err := up(eng, f, valueInit(f, values, false, false),
		func(acc, in sim.Payload) sim.Payload {
			acc.A = math.Max(acc.A, in.A)
			return acc
		}, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make(map[int]float64, len(res))
	for r, p := range res {
		out[r] = p.A
	}
	return out, stats, nil
}

// Min is the symmetric variant of Algorithm 2 for minima.
func Min(eng *sim.Engine, f *forest.Forest, values []float64, opts Options) (map[int]float64, sim.Counters, error) {
	res, stats, err := up(eng, f, valueInit(f, values, false, false),
		func(acc, in sim.Payload) sim.Payload {
			acc.A = math.Min(acc.A, in.A)
			return acc
		}, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make(map[int]float64, len(res))
	for r, p := range res {
		out[r] = p.A
	}
	return out, stats, nil
}

// addPayloads is the componentwise-sum merge shared by Sum and Moments.
func addPayloads(acc, in sim.Payload) sim.Payload {
	acc.A += in.A
	acc.B += in.B
	acc.C += in.C
	return acc
}

// Sum runs Convergecast-sum (Algorithm 3): each root learns its tree's
// (Σ values, tree size) vector.
func Sum(eng *sim.Engine, f *forest.Forest, values []float64, opts Options) (map[int]SumCount, sim.Counters, error) {
	res, stats, err := up(eng, f, valueInit(f, values, true, false), addPayloads, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make(map[int]SumCount, len(res))
	for r, p := range res {
		out[r] = SumCount{Sum: p.A, Count: p.C}
	}
	return out, stats, nil
}

// MomentsVec is the per-tree (Σv, Σv², size) vector used to compute mean
// and variance in a single pass — the "suitable modification" extending
// Algorithm 3 to second moments within the same bounded message size.
type MomentsVec struct {
	Sum   float64
	Sum2  float64
	Count float64
}

// Moments runs a three-component convergecast: each root learns its
// tree's (Σ values, Σ values², tree size).
func Moments(eng *sim.Engine, f *forest.Forest, values []float64, opts Options) (map[int]MomentsVec, sim.Counters, error) {
	res, stats, err := up(eng, f, valueInit(f, values, true, true), addPayloads, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make(map[int]MomentsVec, len(res))
	for r, p := range res {
		out[r] = MomentsVec{Sum: p.A, Sum2: p.B, Count: p.C}
	}
	return out, stats, nil
}

// down pushes per-root payloads to every tree member. A node sends to one
// child per round (the one-call-per-round constraint), retrying
// unacknowledged children; delivered children start forwarding to their
// own subtrees the next round. Liveness is re-evaluated every round:
// dead children are skipped (their subtrees go unserved — degraded
// delivery, reported through the returned have mask), and unreachable
// subtrees (a dead or payload-less ancestor) stop counting toward
// completion, so mid-run crashes cannot stall the phase. Under an active
// fault regime an incomplete broadcast returns partial results instead
// of ErrIncomplete.
func down(eng *sim.Engine, f *forest.Forest, perRoot map[int]sim.Payload, opts Options) ([]sim.Payload, *bitset.Set, sim.Counters, error) {
	n := eng.N()
	if f.N() != n {
		return nil, nil, sim.Counters{}, fmt.Errorf("convergecast: forest has %d nodes, engine %d", f.N(), n)
	}
	start := eng.Stats()
	have := bitset.New(n)
	pay := make([]sim.Payload, n)
	nextChild := make([]int, n) // index into Children(i) of next un-acked child
	for i := 0; i < n; i++ {
		if f.Member(i) && f.IsRoot(i) {
			p, ok := perRoot[i]
			if !ok {
				return nil, nil, sim.Counters{}, fmt.Errorf("convergecast: missing payload for root %d", i)
			}
			have.Set(i)
			pay[i] = p
		}
	}
	// order lists members parents-before-children for the per-round
	// reachability sweep; reach[i] = node i holds or can still receive
	// the payload through live ancestors.
	order := f.LeavesFirst()
	reach := bitset.New(n)
	remaining := 0
	countRemaining := func() int {
		rem := 0
		for k := len(order) - 1; k >= 0; k-- {
			i := order[k]
			switch {
			case !eng.Alive(i):
				reach.Clear(i)
			case have.Test(i):
				reach.Set(i)
			case f.IsRoot(i):
				reach.Clear(i) // root without payload cannot be served
			default:
				if reach.Test(f.Parent(i)) {
					reach.Set(i)
				} else {
					reach.Clear(i)
				}
			}
			if reach.Test(i) && !have.Test(i) {
				rem++
			}
		}
		return rem
	}
	calls := make([]sim.Call, n)
	roundCap := f.MaxTreeSize() + f.MaxHeight() + opts.extra()
	for round := 0; round < roundCap; round++ {
		remaining = countRemaining()
		if remaining == 0 {
			break
		}
		eng.Tick()
		for i := 0; i < n; i++ {
			calls[i] = sim.Call{}
			if !have.Test(i) || !eng.Alive(i) {
				continue
			}
			kids := f.Children(i)
			// Skip children that died waiting: retrying them would block
			// the rest of the subtree forever.
			for nextChild[i] < len(kids) && !eng.Alive(kids[nextChild[i]]) {
				nextChild[i]++
			}
			if nextChild[i] >= len(kids) {
				continue
			}
			p := pay[i]
			p.Kind = kindDown
			calls[i] = sim.Call{Active: true, To: kids[nextChild[i]], Pay: p}
		}
		eng.ResolveCalls(calls,
			func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
				if !have.Test(callee) {
					have.Set(callee)
					pay[callee] = req
				}
				return sim.Payload{Kind: kindDown}, true
			},
			func(caller int, resp sim.Payload) {
				nextChild[caller]++
			})
	}
	// Recount after the loop: the final deliveries may have landed during
	// the last permitted round, after this iteration's count was taken.
	remaining = countRemaining()
	stats := eng.Stats().Sub(start)
	if remaining > 0 && !eng.Faulty() {
		return nil, nil, stats, ErrIncomplete
	}
	return pay, have, stats, nil
}

// BroadcastValue distributes one float per root to all members of its
// tree; the per-node result is NaN for non-members and for members the
// broadcast could not reach (crashed, or beyond a crashed ancestor).
func BroadcastValue(eng *sim.Engine, f *forest.Forest, perRoot map[int]float64, opts Options) ([]float64, sim.Counters, error) {
	pays := make(map[int]sim.Payload, len(perRoot))
	for r, v := range perRoot {
		pays[r] = sim.Payload{A: v}
	}
	res, have, stats, err := down(eng, f, pays, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make([]float64, eng.N())
	for i := range out {
		if have.Test(i) {
			out[i] = res[i].A
		} else {
			out[i] = math.NaN()
		}
	}
	return out, stats, nil
}

// BroadcastRootAddr performs the Phase II address broadcast: every root
// announces its address down its tree, so all nodes learn their root (the
// non-address-oblivious forwarding table used by Phase III). Non-members
// and unreached members get -1.
func BroadcastRootAddr(eng *sim.Engine, f *forest.Forest, opts Options) ([]int, sim.Counters, error) {
	pays := make(map[int]sim.Payload, f.NumTrees())
	for _, r := range f.Roots() {
		pays[r] = sim.Payload{X: int64(r)}
	}
	res, have, stats, err := down(eng, f, pays, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make([]int, eng.N())
	for i := range out {
		if have.Test(i) {
			out[i] = int(res[i].X)
		} else {
			out[i] = -1
		}
	}
	return out, stats, nil
}
