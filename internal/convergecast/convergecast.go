// Package convergecast implements Phase II of DRR-gossip (Algorithms 2
// and 3): upward aggregation of each ranking tree's local aggregate at its
// root, and the downward broadcast that follows (root addresses after
// Phase I, final aggregates after Phase III).
//
// Loss handling follows the paper's remark that lossy links are tolerated
// by repeated calls: a child re-sends its contribution every round until
// the parent acknowledges it; the parent merges idempotently, so a
// retransmission after a lost ack cannot double-count. With δ < 1/8 every
// edge succeeds within a few attempts whp, preserving the O(n) message and
// O(max tree size) time bounds of the phase.
package convergecast

import (
	"errors"
	"fmt"
	"math"

	"drrgossip/internal/forest"
	"drrgossip/internal/sim"
)

// Options tune Phase II.
type Options struct {
	// ExtraRounds pads the round cap beyond the lossless minimum to absorb
	// retransmissions. 0 means 60 (overall failure odds ~ n·(2δ)^60).
	ExtraRounds int
}

func (o Options) extra() int {
	if o.ExtraRounds == 0 {
		return 60
	}
	return o.ExtraRounds
}

// SumCount is the (value-sum, size-count) vector of Algorithm 3.
type SumCount struct {
	Sum   float64
	Count float64
}

// ErrIncomplete reports that some tree failed to finish within the round
// cap (practically impossible for δ < 1/8 with the default padding).
var ErrIncomplete = errors.New("convergecast: phase did not complete within its round budget")

const (
	kindUp   uint8 = 0x21
	kindDown uint8 = 0x22
)

// mergeFunc folds a child's contribution into the accumulator payload
// (fields A, B, C carry the aggregate vector; Kind and X are managed by
// the transport).
type mergeFunc func(acc, in sim.Payload) sim.Payload

// up runs the generic upward aggregation and returns per-root payload
// accumulators.
func up(eng *sim.Engine, f *forest.Forest, init []sim.Payload, merge mergeFunc, opts Options) (map[int]sim.Payload, sim.Counters, error) {
	n := eng.N()
	if f.N() != n {
		return nil, sim.Counters{}, fmt.Errorf("convergecast: forest has %d nodes, engine %d", f.N(), n)
	}
	start := eng.Stats()
	acc := append([]sim.Payload(nil), init...)
	pending := make([]int, n) // children not yet merged
	merged := make([]bool, n) // child -> contribution registered at parent
	acked := make([]bool, n)  // child -> knows it was registered
	remaining := 0            // members still to be acked (non-roots)
	for i := 0; i < n; i++ {
		if !f.Member(i) {
			continue
		}
		pending[i] = len(f.Children(i))
		if !f.IsRoot(i) {
			remaining++
		}
	}
	calls := make([]sim.Call, n)
	roundCap := f.MaxHeight() + opts.extra()
	for round := 0; remaining > 0 && round < roundCap; round++ {
		eng.Tick()
		for i := 0; i < n; i++ {
			calls[i] = sim.Call{}
			if !f.Member(i) || f.IsRoot(i) || acked[i] || pending[i] > 0 {
				continue
			}
			pay := acc[i]
			pay.Kind = kindUp
			pay.X = int64(i)
			calls[i] = sim.Call{Active: true, To: f.Parent(i), Pay: pay}
		}
		eng.ResolveCalls(calls,
			func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
				if !merged[caller] {
					merged[caller] = true
					acc[callee] = merge(acc[callee], req)
					pending[callee]--
				}
				return sim.Payload{Kind: kindUp}, true
			},
			func(caller int, resp sim.Payload) {
				if !acked[caller] {
					acked[caller] = true
					remaining--
				}
			})
	}
	stats := eng.Stats().Sub(start)
	if remaining > 0 {
		return nil, stats, ErrIncomplete
	}
	out := make(map[int]sim.Payload, f.NumTrees())
	for _, r := range f.Roots() {
		out[r] = acc[r]
	}
	return out, stats, nil
}

// valueInit builds per-node payload accumulators with A = value.
func valueInit(f *forest.Forest, values []float64, withCount, withSquare bool) []sim.Payload {
	init := make([]sim.Payload, len(values))
	for i, v := range values {
		init[i].A = v
		if withSquare {
			init[i].B = v * v
		}
		if withCount && f.Member(i) {
			init[i].C = 1
		}
	}
	return init
}

// Max runs Convergecast-max (Algorithm 2): each root learns the maximum
// value in its tree.
func Max(eng *sim.Engine, f *forest.Forest, values []float64, opts Options) (map[int]float64, sim.Counters, error) {
	res, stats, err := up(eng, f, valueInit(f, values, false, false),
		func(acc, in sim.Payload) sim.Payload {
			acc.A = math.Max(acc.A, in.A)
			return acc
		}, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make(map[int]float64, len(res))
	for r, p := range res {
		out[r] = p.A
	}
	return out, stats, nil
}

// Min is the symmetric variant of Algorithm 2 for minima.
func Min(eng *sim.Engine, f *forest.Forest, values []float64, opts Options) (map[int]float64, sim.Counters, error) {
	res, stats, err := up(eng, f, valueInit(f, values, false, false),
		func(acc, in sim.Payload) sim.Payload {
			acc.A = math.Min(acc.A, in.A)
			return acc
		}, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make(map[int]float64, len(res))
	for r, p := range res {
		out[r] = p.A
	}
	return out, stats, nil
}

// addPayloads is the componentwise-sum merge shared by Sum and Moments.
func addPayloads(acc, in sim.Payload) sim.Payload {
	acc.A += in.A
	acc.B += in.B
	acc.C += in.C
	return acc
}

// Sum runs Convergecast-sum (Algorithm 3): each root learns its tree's
// (Σ values, tree size) vector.
func Sum(eng *sim.Engine, f *forest.Forest, values []float64, opts Options) (map[int]SumCount, sim.Counters, error) {
	res, stats, err := up(eng, f, valueInit(f, values, true, false), addPayloads, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make(map[int]SumCount, len(res))
	for r, p := range res {
		out[r] = SumCount{Sum: p.A, Count: p.C}
	}
	return out, stats, nil
}

// MomentsVec is the per-tree (Σv, Σv², size) vector used to compute mean
// and variance in a single pass — the "suitable modification" extending
// Algorithm 3 to second moments within the same bounded message size.
type MomentsVec struct {
	Sum   float64
	Sum2  float64
	Count float64
}

// Moments runs a three-component convergecast: each root learns its
// tree's (Σ values, Σ values², tree size).
func Moments(eng *sim.Engine, f *forest.Forest, values []float64, opts Options) (map[int]MomentsVec, sim.Counters, error) {
	res, stats, err := up(eng, f, valueInit(f, values, true, true), addPayloads, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make(map[int]MomentsVec, len(res))
	for r, p := range res {
		out[r] = MomentsVec{Sum: p.A, Sum2: p.B, Count: p.C}
	}
	return out, stats, nil
}

// down pushes per-root payloads to every tree member. A node sends to one
// child per round (the one-call-per-round constraint), retrying
// unacknowledged children; delivered children start forwarding to their
// own subtrees the next round.
func down(eng *sim.Engine, f *forest.Forest, perRoot map[int]sim.Payload, opts Options) ([]sim.Payload, sim.Counters, error) {
	n := eng.N()
	if f.N() != n {
		return nil, sim.Counters{}, fmt.Errorf("convergecast: forest has %d nodes, engine %d", f.N(), n)
	}
	start := eng.Stats()
	have := make([]bool, n)
	pay := make([]sim.Payload, n)
	nextChild := make([]int, n) // index into Children(i) of next un-acked child
	remaining := 0
	for i := 0; i < n; i++ {
		if !f.Member(i) {
			continue
		}
		remaining++
		if f.IsRoot(i) {
			p, ok := perRoot[i]
			if !ok {
				return nil, sim.Counters{}, fmt.Errorf("convergecast: missing payload for root %d", i)
			}
			have[i] = true
			pay[i] = p
			remaining--
		}
	}
	calls := make([]sim.Call, n)
	roundCap := f.MaxTreeSize() + f.MaxHeight() + opts.extra()
	for round := 0; remaining > 0 && round < roundCap; round++ {
		eng.Tick()
		for i := 0; i < n; i++ {
			calls[i] = sim.Call{}
			if !have[i] {
				continue
			}
			kids := f.Children(i)
			if nextChild[i] >= len(kids) {
				continue
			}
			child := kids[nextChild[i]]
			p := pay[i]
			p.Kind = kindDown
			calls[i] = sim.Call{Active: true, To: child, Pay: p}
		}
		eng.ResolveCalls(calls,
			func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
				if !have[callee] {
					have[callee] = true
					pay[callee] = req
					remaining--
				}
				return sim.Payload{Kind: kindDown}, true
			},
			func(caller int, resp sim.Payload) {
				nextChild[caller]++
			})
	}
	stats := eng.Stats().Sub(start)
	if remaining > 0 {
		return nil, stats, ErrIncomplete
	}
	return pay, stats, nil
}

// BroadcastValue distributes one float per root to all members of its
// tree; the per-node result is NaN for non-members.
func BroadcastValue(eng *sim.Engine, f *forest.Forest, perRoot map[int]float64, opts Options) ([]float64, sim.Counters, error) {
	pays := make(map[int]sim.Payload, len(perRoot))
	for r, v := range perRoot {
		pays[r] = sim.Payload{A: v}
	}
	res, stats, err := down(eng, f, pays, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make([]float64, eng.N())
	for i := range out {
		if f.Member(i) {
			out[i] = res[i].A
		} else {
			out[i] = math.NaN()
		}
	}
	return out, stats, nil
}

// BroadcastRootAddr performs the Phase II address broadcast: every root
// announces its address down its tree, so all nodes learn their root (the
// non-address-oblivious forwarding table used by Phase III). Non-members
// get -1.
func BroadcastRootAddr(eng *sim.Engine, f *forest.Forest, opts Options) ([]int, sim.Counters, error) {
	pays := make(map[int]sim.Payload, f.NumTrees())
	for _, r := range f.Roots() {
		pays[r] = sim.Payload{X: int64(r)}
	}
	res, stats, err := down(eng, f, pays, opts)
	if err != nil {
		return nil, stats, err
	}
	out := make([]int, eng.N())
	for i := range out {
		if f.Member(i) {
			out[i] = int(res[i].X)
		} else {
			out[i] = -1
		}
	}
	return out, stats, nil
}
