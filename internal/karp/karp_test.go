package karp

import (
	"math"
	"testing"

	"drrgossip/internal/sim"
)

func TestSpreadInformsAll(t *testing.T) {
	for _, n := range []int{256, 2048} {
		eng := sim.NewEngine(n, sim.Options{Seed: 111})
		res, err := Spread(eng, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			t.Fatalf("n=%d: only %d/%d informed", n, res.Informed, n)
		}
		if res.RoundsToAllInformed < 0 {
			t.Fatal("RoundsToAllInformed not recorded")
		}
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	n := 4096
	eng := sim.NewEngine(n, sim.Options{Seed: 112})
	res, err := Spread(eng, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	logn := math.Log2(float64(n))
	if float64(res.RoundsToAllInformed) > 6*logn {
		t.Fatalf("took %d rounds, > 6 log n", res.RoundsToAllInformed)
	}
}

func TestTransmissionsNLogLogN(t *testing.T) {
	// The Karp et al. contract: O(n log log n) transmissions. Check both
	// an absolute envelope (a small multiple of loglog n + the constant
	// tail) and the growth shape: quadrupling n from 4k to 16k must move
	// transmissions-per-node like loglog n (flat), not like log n (+2).
	perNode := func(n int) float64 {
		eng := sim.NewEngine(n, sim.Options{Seed: 113})
		res, err := Spread(eng, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			t.Fatalf("n=%d: spread incomplete", n)
		}
		return float64(res.Transmissions) / float64(n)
	}
	p16 := perNode(16384)
	loglog := math.Log2(math.Log2(16384.0))
	if p16 > 4*(loglog+4) {
		t.Fatalf("transmissions per node %v above O(loglog n) envelope %v", p16, 4*(loglog+4))
	}
	p4 := perNode(4096)
	if p16-p4 > 1.5 {
		t.Fatalf("per-node transmissions grew by %v from n=4k to 16k; log-like, not loglog-like", p16-p4)
	}
}

func TestProtocolQuiesces(t *testing.T) {
	// With counters, all nodes eventually stop transmitting; the run must
	// end well before the round cap.
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 114})
	opts := Options{}
	res, err := Spread(eng, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds >= opts.maxRounds(n, 0) {
		t.Fatalf("protocol did not quiesce: ran %d rounds", res.Rounds)
	}
}

func TestUnderLoss(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 115, Loss: 0.125})
	res, err := Spread(eng, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("loss prevented full spread: %d/%d", res.Informed, n)
	}
}

func TestWithCrashes(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 116, CrashFrac: 0.25})
	src := eng.AliveIDs()[0]
	res, err := Spread(eng, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("crashes prevented full spread: %d/%d alive", res.Informed, eng.NumAlive())
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine(64, sim.Options{Seed: 117, CrashFrac: 0.5})
	if _, err := Spread(eng, -1, Options{}); err == nil {
		t.Fatal("negative source accepted")
	}
	var dead int
	for i := 0; i < 64; i++ {
		if !eng.Alive(i) {
			dead = i
			break
		}
	}
	if _, err := Spread(eng, dead, Options{}); err == nil {
		t.Fatal("crashed source accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		eng := sim.NewEngine(512, sim.Options{Seed: 118})
		res, err := Spread(eng, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Transmissions != b.Transmissions || a.Rounds != b.Rounds {
		t.Fatal("nondeterministic spread")
	}
}

func BenchmarkSpread(b *testing.B) {
	n := 4096
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(n, sim.Options{Seed: uint64(i)})
		if _, err := Spread(eng, 0, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
