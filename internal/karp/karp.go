// Package karp implements randomized rumor spreading with the
// median-counter termination rule of Karp, Schindelhauer, Shenker and
// Vöcking (FOCS 2000): push-pull gossip where every player keeps a
// counter that climbs once the rumor has saturated the network, after
// which the player stops transmitting.
//
// Contract: O(log n) rounds and O(n log log n) rumor transmissions,
// address-obliviously. The F12 experiment runs it next to the
// address-oblivious aggregate lower bound (internal/oblivious) to exhibit
// the paper's separation: spreading one rumor is strictly cheaper than
// computing an aggregate in the address-oblivious model.
//
// Accounting note: Karp et al. count transmissions of the rumor;
// establishing a connection is free in their model. Result.Transmissions
// is therefore the paper-comparable metric, while the engine's message
// counter (which bills every call) is reported alongside for reference.
package karp

import (
	"fmt"
	"math"

	"drrgossip/internal/sim"
)

// Options tune the spreader; zero values pick contract defaults.
type Options struct {
	// CounterMax is the counter value at which a player stops
	// transmitting (0 = ceil(log2 log2 n) + 4).
	CounterMax int
	// MaxRounds bounds the run (0 = 6 log2 n + 30, loss-inflated).
	MaxRounds int
}

// Result reports a rumor-spreading run.
type Result struct {
	// RoundsToAllInformed is the first round at which every alive node
	// knew the rumor (-1 if never).
	RoundsToAllInformed int
	// Rounds is the total rounds until the protocol quiesced.
	Rounds int
	// Transmissions counts rumor transmissions (push and pull answers),
	// the Karp et al. complexity metric.
	Transmissions int64
	// Informed is the number of informed alive nodes at the end.
	Informed    int
	AllInformed bool
	Stats       sim.Counters
}

const kindExchange uint8 = 0x71

func (o Options) counterMax(n int) int {
	if o.CounterMax != 0 {
		return o.CounterMax
	}
	loglog := math.Ceil(math.Log2(math.Log2(float64(n))))
	if loglog < 1 {
		loglog = 1
	}
	return int(loglog) + 4
}

func (o Options) maxRounds(n int, loss float64) int {
	if o.MaxRounds != 0 {
		return o.MaxRounds
	}
	base := 6*int(math.Ceil(math.Log2(float64(n)))) + 30
	if loss > 0 {
		base = int(float64(base)/(1-2*math.Min(loss, 0.4))) + 1
	}
	return base
}

// Spread spreads a rumor from source to all nodes. The source must be
// alive.
func Spread(eng *sim.Engine, source int, opts Options) (*Result, error) {
	n := eng.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("karp: source %d out of range", source)
	}
	if !eng.Alive(source) {
		return nil, fmt.Errorf("karp: source %d crashed", source)
	}
	start := eng.Stats()
	ctMax := opts.counterMax(n)
	maxRounds := opts.maxRounds(n, eng.Loss())

	informed := make([]bool, n)
	ctr := make([]int, n)
	informed[source] = true
	var transmissions int64
	res := &Result{RoundsToAllInformed: -1}

	calls := make([]sim.Call, n)
	active := func(i int) bool { return informed[i] && ctr[i] < ctMax }
	// encode packs a node's state into a payload.
	encode := func(i int, kind uint8) sim.Payload {
		inf := int64(0)
		if informed[i] {
			inf = 1
		}
		return sim.Payload{Kind: kind, X: inf, Y: int64(ctr[i])}
	}

	round := 0
	for ; round < maxRounds; round++ {
		anyActive := false
		for i := 0; i < n; i++ {
			calls[i] = sim.Call{}
			if !eng.Alive(i) {
				continue
			}
			if active(i) {
				anyActive = true
			}
			// Every player calls a random partner each round (push-pull);
			// transmitting the rumor within the call is what costs.
			calls[i] = sim.Call{Active: true, To: eng.RNG(i).IntnOther(n, i), Pay: encode(i, kindExchange)}
		}
		if !anyActive {
			break
		}
		eng.Tick()
		learn := make(map[int]bool)
		sawGE := make(map[int]bool)
		eng.ResolveCalls(calls,
			func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
				callerInformed := req.X == 1
				callerCtr := int(req.Y)
				callerActive := callerInformed && callerCtr < ctMax
				// Push: an active caller transmits the rumor (this is
				// what Karp et al. count); the callee learns from it.
				if callerActive {
					transmissions++
					if !informed[callee] {
						learn[callee] = true
					}
				}
				// State exchange is free on an established connection, so
				// counters keep climbing even against stopped players —
				// without this, the last active stragglers could never
				// meet a peer of equal counter and would never quiesce.
				if callerInformed && informed[callee] && callerCtr >= ctr[callee] {
					sawGE[callee] = true
				}
				// Pull: an active callee answers an *uninformed* caller
				// with the rumor (the request carries the caller's state,
				// so no rumor is wasted on informed requesters — pushes,
				// in contrast, are blind). Its state rides along for free
				// either way.
				pay := encode(callee, kindExchange)
				if active(callee) && !callerInformed {
					transmissions++
					pay.A = 1 // rumor included
				}
				return pay, true
			},
			func(caller int, resp sim.Payload) {
				calleeInformed := resp.X == 1
				calleeCtr := int(resp.Y)
				if resp.A == 1 && !informed[caller] {
					learn[caller] = true
				}
				if calleeInformed && informed[caller] && calleeCtr >= ctr[caller] {
					sawGE[caller] = true
				}
			})
		// Apply state transitions after the exchange (synchronous rounds:
		// everyone acted on round-start state; at most one counter
		// increment per node per round, as in the median rule).
		for node := range learn {
			if !informed[node] {
				informed[node] = true
				ctr[node] = 1
			}
		}
		for node := range sawGE {
			if informed[node] && !learn[node] {
				ctr[node]++
			}
		}
		if res.RoundsToAllInformed < 0 {
			all := true
			for i := 0; i < n; i++ {
				if eng.Alive(i) && !informed[i] {
					all = false
					break
				}
			}
			if all {
				res.RoundsToAllInformed = round + 1
			}
		}
	}

	for i := 0; i < n; i++ {
		if eng.Alive(i) && informed[i] {
			res.Informed++
		}
	}
	res.Rounds = round
	res.Transmissions = transmissions
	res.AllInformed = res.Informed == eng.NumAlive()
	res.Stats = eng.Stats().Sub(start)
	return res, nil
}
