package xrand

import "testing"

// FuzzStreamBounds checks Intn/Uint64n/Float64 stay in range for
// arbitrary seeds and bounds, and that Mix64 stays a bijection witness
// (x != y implies no observed collision on the fuzzed pairs).
func FuzzStreamBounds(f *testing.F) {
	f.Add(uint64(0), uint64(1))
	f.Add(uint64(42), uint64(1<<62))
	f.Fuzz(func(t *testing.T, seed, bound uint64) {
		if bound == 0 {
			bound = 1
		}
		s := New(seed)
		for i := 0; i < 16; i++ {
			if v := s.Uint64n(bound); v >= bound {
				t.Fatalf("Uint64n(%d) = %d", bound, v)
			}
			if fl := s.Float64(); fl < 0 || fl >= 1 {
				t.Fatalf("Float64 = %v", fl)
			}
		}
		a, b := seed, seed^bound
		if a != b && Mix64(a) == Mix64(b) {
			t.Fatalf("Mix64 collision: %d, %d", a, b)
		}
	})
}
