// Package xrand provides fast, deterministic, splittable pseudo-random
// number streams for the gossip simulator.
//
// The simulator steps thousands of nodes in parallel each round; for runs to
// be reproducible from a single seed regardless of goroutine scheduling,
// every node owns an independent Stream derived from (seed, nodeID), and
// one-off decisions (e.g. per-message loss) are made by stateless hashing.
//
// The generator is the SplitMix64 design (Steele, Lea, Flood: "Fast
// Splittable Pseudorandom Number Generators", OOPSLA 2014): the state
// advances by an odd "gamma" increment and the output is a bijective mix of
// the state. Streams can be split into statistically independent children.
package xrand

import "math/bits"

// goldenGamma is the odd integer closest to 2^64/φ, the default stream
// increment of SplitMix64.
const goldenGamma = 0x9E3779B97F4A7C15

// Stream is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; give each goroutine its own Stream (see Derive and
// Split).
type Stream struct {
	state uint64
	gamma uint64 // always odd
}

// New returns a Stream seeded with seed, using the golden-ratio gamma.
func New(seed uint64) *Stream {
	return &Stream{state: Mix64(seed), gamma: goldenGamma}
}

// Derive returns a Stream for the given identifiers, independent of streams
// derived with any other identifier sequence. It is the standard way to
// create per-node generators: Derive(seed, uint64(nodeID)).
func Derive(seed uint64, ids ...uint64) *Stream {
	s := DeriveStream(seed, ids...)
	return &s
}

// DeriveStream is Derive returning the Stream by value, for callers that
// keep streams in pre-allocated storage (e.g. the simulator's per-node
// stream table, which reseeds slots in place when an engine is reused)
// and must not pay one heap allocation per stream.
func DeriveStream(seed uint64, ids ...uint64) Stream {
	h := Mix64(seed)
	for _, id := range ids {
		h = Mix64(h ^ Mix64(id+goldenGamma))
	}
	return Stream{state: h, gamma: mixGamma(h + goldenGamma)}
}

// Split returns a new Stream statistically independent from s; s itself
// advances. Useful to hand a child generator to a sub-computation without
// coupling its consumption pattern to the parent's.
func (s *Stream) Split() *Stream {
	st := s.next()
	g := mixGamma(s.next())
	return &Stream{state: st, gamma: g}
}

// next advances the state and returns the raw (unmixed) state.
func (s *Stream) next() uint64 {
	s.state += s.gamma
	return s.state
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Stream) Uint64() uint64 { return Mix64(s.next()) }

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method, which is unbiased.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// IntnOther returns a uniform int in [0, n) \ {self}; used to pick a random
// communication partner other than oneself. It panics if n < 2.
func (s *Stream) IntnOther(n, self int) int {
	if n < 2 {
		panic("xrand: IntnOther needs n >= 2")
	}
	v := s.Intn(n - 1)
	if v >= self {
		v++
	}
	return v
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1p-53
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, via the Fisher-Yates algorithm.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Mix64 is the 64-bit finalizer of SplitMix64 (variant "mix13" by David
// Stafford). It is a bijection on uint64 with strong avalanche behaviour,
// suitable both as an RNG output function and as a hash for stateless
// deterministic decisions.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Hash combines identifiers into a single well-mixed 64-bit value. It is
// stateless: the same inputs always produce the same output. The simulator
// uses it for per-message loss decisions so that parallel delivery order
// cannot change outcomes.
func Hash(ids ...uint64) uint64 {
	h := uint64(0x8A5CD789635D2DFF)
	for _, id := range ids {
		h = Mix64(h ^ Mix64(id+goldenGamma))
	}
	return h
}

// HashFloat maps identifiers to a uniform value in [0, 1), statelessly.
func HashFloat(ids ...uint64) float64 {
	return float64(Hash(ids...)>>11) * 0x1p-53
}

// mixGamma turns an arbitrary value into a valid (odd, well-mixed) gamma.
func mixGamma(x uint64) uint64 {
	x = (x ^ (x >> 33)) * 0xFF51AFD7ED558CCD // MurmurHash3 mix
	x = (x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53
	x = (x ^ (x >> 33)) | 1 // gamma must be odd
	if bits.OnesCount64(x^(x>>1)) < 24 {
		// Too regular a bit pattern: break it up (cf. SplittableRandom).
		x ^= 0xAAAAAAAAAAAAAAAA
	}
	return x
}
