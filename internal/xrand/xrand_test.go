package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Streams derived for different node IDs must not be shifted copies of
	// one another.
	a := Derive(7, 0)
	b := Derive(7, 1)
	seen := make(map[uint64]bool)
	for i := 0; i < 2000; i++ {
		seen[a.Uint64()] = true
	}
	hits := 0
	for i := 0; i < 2000; i++ {
		if seen[b.Uint64()] {
			hits++
		}
	}
	if hits > 0 {
		t.Fatalf("derived streams shared %d values", hits)
	}
}

func TestDeriveDeterministic(t *testing.T) {
	x := Derive(9, 3, 4).Uint64()
	y := Derive(9, 3, 4).Uint64()
	if x != y {
		t.Fatalf("Derive not deterministic: %x vs %x", x, y)
	}
	z := Derive(9, 4, 3).Uint64()
	if x == z {
		t.Fatalf("Derive ignored identifier order")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += s.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(6)
	const buckets = 10
	const trials = 100000
	counts := make([]int, buckets)
	for i := 0; i < trials; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(trials) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestIntnOther(t *testing.T) {
	s := New(7)
	for n := 2; n <= 5; n++ {
		for self := 0; self < n; self++ {
			for i := 0; i < 200; i++ {
				v := s.IntnOther(n, self)
				if v == self || v < 0 || v >= n {
					t.Fatalf("IntnOther(%d,%d) = %d", n, self, v)
				}
			}
		}
	}
}

func TestIntnOtherUniform(t *testing.T) {
	s := New(8)
	const n, self, trials = 7, 3, 70000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.IntnOther(n, self)]++
	}
	if counts[self] != 0 {
		t.Fatalf("IntnOther returned self %d times", counts[self])
	}
	want := float64(trials) / (n - 1)
	for v, c := range counts {
		if v == self {
			continue
		}
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("value %d count %d deviates from %v", v, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := s.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(10)
	child := parent.Split()
	seen := make(map[uint64]bool)
	for i := 0; i < 2000; i++ {
		seen[parent.Uint64()] = true
	}
	for i := 0; i < 2000; i++ {
		if seen[child.Uint64()] {
			t.Fatalf("split child collided with parent at step %d", i)
		}
	}
}

func TestHashStateless(t *testing.T) {
	if Hash(1, 2, 3) != Hash(1, 2, 3) {
		t.Fatal("Hash not deterministic")
	}
	if Hash(1, 2, 3) == Hash(3, 2, 1) {
		t.Fatal("Hash ignored order")
	}
	if Hash(1) == Hash(1, 0) {
		t.Fatal("Hash ignored arity")
	}
}

func TestHashFloatRange(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		f := HashFloat(42, i)
		if f < 0 || f >= 1 {
			t.Fatalf("HashFloat out of range: %v", f)
		}
	}
}

func TestHashFloatMean(t *testing.T) {
	sum := 0.0
	const trials = 100000
	for i := uint64(0); i < trials; i++ {
		sum += HashFloat(99, i)
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("HashFloat mean %v too far from 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(11)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(12)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", got)
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a window of inputs.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		m := Mix64(i)
		if prev, ok := seen[m]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %x", prev, i, m)
		}
		seen[m] = i
	}
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000003)
	}
}

func BenchmarkHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Hash(uint64(i), 42)
	}
}
