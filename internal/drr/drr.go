// Package drr implements Phase I of DRR-gossip: Distributed Random
// Ranking (Algorithm 1 of the paper).
//
// Every node chooses a rank independently and uniformly at random from
// [0,1], then probes up to log2(n)-1 random nodes, one per round, until it
// finds a node of higher rank; it connects to the first such node (sending
// a connection message) or becomes a root if none is found. Because every
// edge goes from lower to higher rank, the result is a forest of disjoint
// trees with, whp, O(n/log n) trees (Theorem 2) of size O(log n) each
// (Theorem 3), built in O(log n) rounds with O(n log log n) messages
// (Theorem 4).
//
// Faithfulness under the failure model: a probe whose request or reply is
// lost still consumes one of the node's log n - 1 attempts (the node
// learns nothing that round). Connection messages are acknowledged and
// retransmitted a bounded number of times — the paper's "repeated calls"
// remark — and a node whose connection never succeeds becomes a root,
// keeping the forest well defined.
package drr

import (
	"fmt"
	"math"

	"drrgossip/internal/bitset"
	"drrgossip/internal/forest"
	"drrgossip/internal/sim"
)

// Options tune Algorithm 1. The zero value reproduces the paper.
type Options struct {
	// ProbeBudget is the maximum number of random probes per node.
	// 0 means the paper's log2(n) - 1 (minimum 1). The A1 ablation
	// experiment varies this.
	ProbeBudget int
	// ConnectRetries bounds connection-message retransmissions under
	// loss. 0 means 8, which drives the failure probability below 4^-8
	// for any δ < 1/8 (each attempt fails with probability ≤ 2δ ≤ 1/4).
	ConnectRetries int
}

// Result is the outcome of Phase I.
type Result struct {
	Forest *forest.Forest
	Ranks  []float64 // the random ranks (NaN for crashed nodes)
	Probes []int     // probes actually used per node (0 for crashed)
	Stats  sim.Counters
	// Orphans counts nodes that found a higher-ranked parent but whose
	// connection message never got acknowledged; they became roots.
	Orphans int
}

// DefaultProbeBudget returns the paper's probe budget log2(n)-1 (>= 1).
func DefaultProbeBudget(n int) int {
	b := int(math.Ceil(math.Log2(float64(n)))) - 1
	if b < 1 {
		b = 1
	}
	return b
}

// message kinds
const (
	kindProbe uint8 = iota + 1
	kindConnect
)

// Run executes Algorithm 1 on the engine and returns the ranking forest.
func Run(eng *sim.Engine, opts Options) (*Result, error) {
	n := eng.N()
	budget := opts.ProbeBudget
	if budget == 0 {
		budget = DefaultProbeBudget(n)
	}
	if budget < 1 {
		return nil, fmt.Errorf("drr: probe budget must be >= 1, got %d", budget)
	}
	retries := opts.ConnectRetries
	if retries == 0 {
		retries = 8
	}
	start := eng.Stats()

	ranks := make([]float64, n)
	parent := make([]int, n)
	// found/acked are per-node membership sets; dense bitsets keep the
	// Phase I state at n/8 bytes apiece, which matters at million-node
	// scale. They are only mutated on the engine's sequential paths
	// (ResolveCalls handlers); ParallelFor workers read them.
	found := bitset.New(n)
	probes := make([]int, n)
	sim.ParallelFor(n, func(i int) {
		if eng.Alive(i) {
			ranks[i] = eng.RNG(i).Float64()
			parent[i] = forest.Root
		} else {
			ranks[i] = math.NaN()
			parent[i] = forest.NotMember
		}
	})

	// Probing: one random sample per round per still-searching node.
	calls := make([]sim.Call, n)
	for k := 0; k < budget; k++ {
		eng.Tick()
		sim.ParallelFor(n, func(i int) {
			calls[i] = sim.Call{}
			if !eng.Alive(i) || found.Test(i) {
				return
			}
			u := eng.RNG(i).IntnOther(n, i)
			probes[i]++
			calls[i] = sim.Call{Active: true, To: u, Pay: sim.Payload{Kind: kindProbe}}
		})
		eng.ResolveCalls(calls,
			func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
				// Reply with the callee's rank.
				return sim.Payload{Kind: kindProbe, A: ranks[callee], X: int64(callee)}, true
			},
			func(caller int, resp sim.Payload) {
				if resp.A > ranks[caller] {
					found.Set(caller)
					parent[caller] = int(resp.X)
				}
			})
	}

	// Connection: nodes that found a parent send it a connection message
	// carrying their identifier; the parent acknowledges (idempotently, so
	// retries after a lost ack are harmless). Unacknowledged nodes retry up
	// to `retries` times and then fall back to being roots.
	acked := bitset.New(n)
	orphans := 0
	for attempt := 0; attempt < retries; attempt++ {
		eng.Tick()
		active := false
		for i := 0; i < n; i++ {
			calls[i] = sim.Call{}
			if !eng.Alive(i) || !found.Test(i) || acked.Test(i) {
				continue
			}
			active = true
			calls[i] = sim.Call{Active: true, To: parent[i], Pay: sim.Payload{Kind: kindConnect, X: int64(i)}}
		}
		if !active {
			break
		}
		eng.ResolveCalls(calls,
			func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
				return sim.Payload{Kind: kindConnect}, true
			},
			func(caller int, resp sim.Payload) {
				acked.Set(caller)
			})
	}
	for i := 0; i < n; i++ {
		if found.Test(i) && !acked.Test(i) {
			// The child cannot be sure its parent registered it; failing
			// open to a root keeps the forest consistent.
			parent[i] = forest.Root
			found.Clear(i)
			orphans++
		}
	}
	// Dynamic membership: nodes that crashed during the phase leave the
	// forest, and their orphaned children are promoted to roots, so the
	// forest stays valid under mid-run churn. A no-op in the static model.
	orphans += forest.RepairParents(parent, eng.Alive)
	f, err := forest.FromParents(parent)
	if err != nil {
		return nil, fmt.Errorf("drr: invalid forest: %w", err)
	}
	return &Result{
		Forest:  f,
		Ranks:   ranks,
		Probes:  probes,
		Stats:   eng.Stats().Sub(start),
		Orphans: orphans,
	}, nil
}

// TotalProbes sums the per-node probe counts (the quantity Theorem 4
// bounds by O(n log log n) up to the constant per-probe message cost).
func (r *Result) TotalProbes() int {
	t := 0
	for _, p := range r.Probes {
		t += p
	}
	return t
}
