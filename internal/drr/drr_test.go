package drr

import (
	"math"
	"runtime"
	"testing"

	"drrgossip/internal/sim"
)

func run(t *testing.T, n int, opts sim.Options, dopts Options) *Result {
	t.Helper()
	eng := sim.NewEngine(n, opts)
	res, err := Run(eng, dopts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestForestValid(t *testing.T) {
	res := run(t, 1024, sim.Options{Seed: 1}, Options{})
	if err := res.Forest.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Forest.NumMembers() != 1024 {
		t.Fatalf("members = %d", res.Forest.NumMembers())
	}
}

func TestRanksIncreaseTowardsRoots(t *testing.T) {
	// The defining DRR invariant: every edge goes to a strictly higher
	// rank, so ranks strictly increase along every root path.
	res := run(t, 2048, sim.Options{Seed: 2}, Options{})
	f := res.Forest
	for i := 0; i < f.N(); i++ {
		if p := f.Parent(i); p >= 0 {
			if !(res.Ranks[p] > res.Ranks[i]) {
				t.Fatalf("edge (%d->%d) violates rank order: %v <= %v",
					i, p, res.Ranks[p], res.Ranks[i])
			}
		}
	}
}

func TestTreeCountTheorem2(t *testing.T) {
	// Theorem 2: number of trees is Θ(n/log n). The expectation is
	// Σ (i/n)^(log n -1) ≈ n/log n; allow generous whp slack.
	for _, n := range []int{1024, 4096} {
		res := run(t, n, sim.Options{Seed: 3}, Options{})
		trees := float64(res.Forest.NumTrees())
		expect := float64(n) / math.Log2(float64(n))
		if trees > 6*expect {
			t.Fatalf("n=%d: %v trees, > 6*n/log n = %v", n, trees, 6*expect)
		}
		if trees < expect/6 {
			t.Fatalf("n=%d: %v trees, < n/(6 log n) = %v", n, trees, expect/6)
		}
	}
}

func TestTreeSizeTheorem3(t *testing.T) {
	// Theorem 3: every tree has O(log n) nodes whp.
	for _, n := range []int{1024, 4096, 16384} {
		res := run(t, n, sim.Options{Seed: 4}, Options{})
		maxSize := float64(res.Forest.MaxTreeSize())
		logn := math.Log2(float64(n))
		if maxSize > 12*logn {
			t.Fatalf("n=%d: max tree size %v > 12 log n = %v", n, maxSize, 12*logn)
		}
	}
}

func TestMessagesTheorem4(t *testing.T) {
	// Theorem 4: O(n log log n) messages; expected probes per node is
	// O(log log n). Check the per-node average is well under log n and
	// within a constant of log2(log2 n).
	n := 8192
	res := run(t, n, sim.Options{Seed: 5}, Options{})
	avgProbes := float64(res.TotalProbes()) / float64(n)
	loglog := math.Log2(math.Log2(float64(n)))
	if avgProbes > 4*loglog {
		t.Fatalf("avg probes %v > 4 loglog n = %v", avgProbes, 4*loglog)
	}
	if avgProbes < 1 {
		t.Fatalf("avg probes %v < 1", avgProbes)
	}
	// Message count tracks probes within a small constant factor (probe =
	// up to 2 messages, plus O(n) connections).
	msgs := float64(res.Stats.Messages)
	if msgs > float64(3*res.TotalProbes()+3*n) {
		t.Fatalf("messages %v inconsistent with probes %d", msgs, res.TotalProbes())
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	// Probing takes exactly the budget rounds; connection adds <= retries.
	n := 4096
	res := run(t, n, sim.Options{Seed: 6}, Options{})
	budget := DefaultProbeBudget(n)
	if res.Stats.Rounds < budget || res.Stats.Rounds > budget+9 {
		t.Fatalf("rounds = %d, budget = %d", res.Stats.Rounds, budget)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, 512, sim.Options{Seed: 7}, Options{})
	b := run(t, 512, sim.Options{Seed: 7}, Options{})
	for i := 0; i < 512; i++ {
		if a.Forest.Parent(i) != b.Forest.Parent(i) {
			t.Fatalf("forests differ at node %d", i)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestSeedsProduceDifferentForests(t *testing.T) {
	a := run(t, 512, sim.Options{Seed: 8}, Options{})
	b := run(t, 512, sim.Options{Seed: 9}, Options{})
	same := 0
	for i := 0; i < 512; i++ {
		if a.Forest.Parent(i) == b.Forest.Parent(i) {
			same++
		}
	}
	if same == 512 {
		t.Fatal("different seeds produced identical forests")
	}
}

func TestUnderLoss(t *testing.T) {
	// With δ = 1/8 (the paper's maximum) the forest must stay valid;
	// probes are wasted so there are more roots, and a few orphans may
	// fall back to roots.
	res := run(t, 2048, sim.Options{Seed: 10, Loss: 0.125}, Options{})
	if err := res.Forest.Validate(); err != nil {
		t.Fatal(err)
	}
	lossless := run(t, 2048, sim.Options{Seed: 10}, Options{})
	if res.Forest.NumTrees() < lossless.Forest.NumTrees() {
		t.Fatalf("loss reduced tree count: %d < %d",
			res.Forest.NumTrees(), lossless.Forest.NumTrees())
	}
}

func TestOrphansRareUnderModerateLoss(t *testing.T) {
	res := run(t, 4096, sim.Options{Seed: 11, Loss: 0.1}, Options{})
	// Each connection fails per attempt w.p. <= 0.19; after 8 retries
	// orphan probability is ~2e-6 per node.
	if res.Orphans > 3 {
		t.Fatalf("too many orphans: %d", res.Orphans)
	}
}

func TestWithCrashes(t *testing.T) {
	eng := sim.NewEngine(2048, sim.Options{Seed: 12, CrashFrac: 0.3})
	res, err := Run(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Forest.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Forest.NumMembers() != eng.NumAlive() {
		t.Fatalf("members %d != alive %d", res.Forest.NumMembers(), eng.NumAlive())
	}
	for i := 0; i < eng.N(); i++ {
		if !eng.Alive(i) && res.Forest.Member(i) {
			t.Fatalf("crashed node %d in forest", i)
		}
		if !eng.Alive(i) && res.Probes[i] != 0 {
			t.Fatalf("crashed node %d probed", i)
		}
	}
}

func TestProbeBudgetAblation(t *testing.T) {
	// Larger budgets mean fewer trees (more nodes find parents).
	n := 4096
	small := run(t, n, sim.Options{Seed: 13}, Options{ProbeBudget: 2})
	paper := run(t, n, sim.Options{Seed: 13}, Options{})
	big := run(t, n, sim.Options{Seed: 13}, Options{ProbeBudget: 3 * DefaultProbeBudget(n)})
	if !(small.Forest.NumTrees() > paper.Forest.NumTrees()) {
		t.Fatalf("small budget should leave more roots: %d vs %d",
			small.Forest.NumTrees(), paper.Forest.NumTrees())
	}
	if !(big.Forest.NumTrees() <= paper.Forest.NumTrees()) {
		t.Fatalf("big budget should leave no more roots: %d vs %d",
			big.Forest.NumTrees(), paper.Forest.NumTrees())
	}
}

func TestProbesNeverExceedBudget(t *testing.T) {
	n := 1024
	res := run(t, n, sim.Options{Seed: 14}, Options{})
	budget := DefaultProbeBudget(n)
	for i, p := range res.Probes {
		if p > budget {
			t.Fatalf("node %d used %d probes > budget %d", i, p, budget)
		}
	}
}

func TestHighestRankIsAlwaysRoot(t *testing.T) {
	res := run(t, 1024, sim.Options{Seed: 15}, Options{})
	best, bestRank := -1, -1.0
	for i, r := range res.Ranks {
		if r > bestRank {
			best, bestRank = i, r
		}
	}
	if !res.Forest.IsRoot(best) {
		t.Fatalf("highest-ranked node %d is not a root", best)
	}
}

func TestDefaultProbeBudget(t *testing.T) {
	cases := []struct{ n, want int }{
		{2, 1}, {4, 1}, {8, 2}, {1024, 9}, {1 << 16, 15},
	}
	for _, c := range cases {
		if got := DefaultProbeBudget(c.n); got != c.want {
			t.Fatalf("DefaultProbeBudget(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTinyNetwork(t *testing.T) {
	res := run(t, 2, sim.Options{Seed: 16}, Options{})
	if err := res.Forest.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Forest.NumTrees() < 1 || res.Forest.NumTrees() > 2 {
		t.Fatalf("trees = %d", res.Forest.NumTrees())
	}
}

func BenchmarkDRR(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(n, sim.Options{Seed: uint64(i)})
				if _, err := Run(eng, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 1024 {
		return "n1024"
	}
	return "n8192"
}

func TestDeterminismAcrossParallelism(t *testing.T) {
	// The engine fans per-node work out to GOMAXPROCS workers; results
	// must be identical under serial and parallel execution (per-node RNG
	// streams + deterministic merge order).
	runWith := func(procs int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		eng := sim.NewEngine(4096, sim.Options{Seed: 99, Loss: 0.05})
		res, err := Run(eng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := runWith(1)
	parallel := runWith(4)
	if serial.Stats != parallel.Stats {
		t.Fatalf("stats differ: serial %+v, parallel %+v", serial.Stats, parallel.Stats)
	}
	for i := 0; i < 4096; i++ {
		if serial.Forest.Parent(i) != parallel.Forest.Parent(i) {
			t.Fatalf("forest differs at node %d across GOMAXPROCS", i)
		}
	}
}
