package drrgossip

import (
	"math"
	"testing"
)

// sameFloat reports bitwise-equivalent results, treating NaN == NaN (a
// Histogram's Value is NaN by contract; crashed nodes report NaN in
// PerNode on both sides).
func sameFloat(x, y float64) bool {
	return x == y || (math.IsNaN(x) && math.IsNaN(y))
}

// answersEqual compares every deterministic field of two answers bitwise.
func answersEqual(t *testing.T, label string, a, b *Answer) {
	t.Helper()
	if a.Op != b.Op || !sameFloat(a.Value, b.Value) || a.Consensus != b.Consensus ||
		a.Cost != b.Cost || a.Trees != b.Trees || a.Alive != b.Alive ||
		a.Exchanges != b.Exchanges ||
		a.FaultEvents != b.FaultEvents || a.FaultCrashes != b.FaultCrashes ||
		a.FaultRevives != b.FaultRevives || a.Converged != b.Converged ||
		!sameFloat(a.Mean, b.Mean) || !sameFloat(a.Variance, b.Variance) ||
		!sameFloat(a.Std, b.Std) {
		t.Fatalf("%s: answers diverged:\n a %+v\n b %+v", label, a, b)
	}
	if len(a.PerNode) != len(b.PerNode) {
		t.Fatalf("%s: PerNode lengths %d vs %d", label, len(a.PerNode), len(b.PerNode))
	}
	for i := range a.PerNode {
		if !sameFloat(a.PerNode[i], b.PerNode[i]) {
			t.Fatalf("%s: PerNode[%d] = %v vs %v", label, i, a.PerNode[i], b.PerNode[i])
		}
	}
	if len(a.Counts) != len(b.Counts) {
		t.Fatalf("%s: Counts lengths %d vs %d", label, len(a.Counts), len(b.Counts))
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatalf("%s: Counts[%d] = %v vs %v", label, i, a.Counts[i], b.Counts[i])
		}
	}
}

// The session's pooled engine (Engine.Reset between protocol runs) must
// be bit-identical to building a fresh engine per run: repeating a query
// on one session — where the second execution reuses the first's dirty
// engine — must reproduce the first answer exactly, and both must match
// a fresh session's answer. Swept across topologies and fault regimes
// because those drive different engine machinery (calls vs routed sends,
// static alive set vs mid-run churn).
func TestEngineReuseBitIdenticalAcrossRuns(t *testing.T) {
	plans := map[string]string{"static": "", "churn": "churn:0.3:25;loss:0.15@0.4..0.8"}
	for _, tc := range []struct {
		name string
		topo Topology
		n    int
	}{
		{"complete", Complete, 96},
		{"chord", Chord, 96},
		{"torus", Torus, 96},
	} {
		for planName, spec := range plans {
			label := tc.name + "/" + planName
			// AllNodes keeps the comparison below covering every node's
			// final value across engine reuse.
			cfg := Config{N: tc.n, Seed: 77, Loss: 0.02, Topology: tc.topo, SampleNodes: AllNodes}
			if spec != "" {
				plan, err := ParseFaultPlan(spec)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Faults = plan
			}
			values := uniformValues(tc.n, 78)
			queries := []Query{AverageOf(values), SumOf(values), MaxOf(values)}
			session, err := New(cfg)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			for _, q := range queries {
				first, err := session.Run(q)
				if err != nil {
					t.Fatalf("%s %s: %v", label, q.Op, err)
				}
				// Second run reuses the engine the first left dirty.
				second, err := session.Run(q)
				if err != nil {
					t.Fatalf("%s %s rerun: %v", label, q.Op, err)
				}
				answersEqual(t, label+"/"+q.Op.String()+"/rerun", first, second)

				freshSession, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := freshSession.Run(q)
				if err != nil {
					t.Fatalf("%s %s fresh: %v", label, q.Op, err)
				}
				answersEqual(t, label+"/"+q.Op.String()+"/fresh", first, fresh)
			}
		}
	}
}
