// Facade-level telemetry contract: per-phase cost attribution sums
// exactly to the aggregate Cost on every op and topology, telemetry is
// a bit-identical read-only tap, event streams are deterministic across
// engine shards and batch parallelism, and a Quantile session exports a
// valid Chrome trace.

package drrgossip

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"drrgossip/internal/sim"
	"drrgossip/internal/telemetry"
)

// sumPhases folds a PhaseCosts slice back into a Cost-shaped bill.
func sumPhases(pcs []PhaseCost) (rounds int, messages, drops int64) {
	for _, pc := range pcs {
		rounds += pc.Rounds
		messages += pc.Messages
		drops += pc.Drops
	}
	return
}

// TestPhaseCostsSumToCost is the golden pin of the acceptance criterion:
// for every op on Complete and Chord, Answer.PhaseCosts sums exactly to
// Answer.Cost — the dense and sparse pipelines account bit-identically
// to their totals.
func TestPhaseCostsSumToCost(t *testing.T) {
	phaseOrder := []string{"drr", "aggregate", "gossip", "broadcast"}
	for _, topo := range []Topology{Complete, Chord} {
		queries := []Query{
			MaxOf(nil), MinOf(nil), SumOf(nil), CountOf(nil), AverageOf(nil),
			RankOf(nil, 500), QuantileOf(nil, 0.9, 5), HistogramOf(nil, []float64{250, 500, 750}),
		}
		if topo.isComplete() {
			queries = append(queries, MomentsOf(nil))
		}
		nw, err := New(Config{N: 512, Seed: 11, Loss: 0.05, Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		values := uniformValues(512, 7)
		for _, q := range queries {
			q.Values = values
			a, err := nw.Run(q)
			if err != nil {
				t.Fatalf("%s/%s: %v", topo, q.Op, err)
			}
			if len(a.PhaseCosts) != 4 {
				t.Fatalf("%s/%s: %d phase entries, want 4", topo, q.Op, len(a.PhaseCosts))
			}
			for i, pc := range a.PhaseCosts {
				if pc.Phase != phaseOrder[i] {
					t.Fatalf("%s/%s: phase %d = %q, want %q", topo, q.Op, i, pc.Phase, phaseOrder[i])
				}
			}
			rounds, messages, drops := sumPhases(a.PhaseCosts)
			if rounds != a.Cost.Rounds || messages != a.Cost.Messages || drops != a.Cost.Drops {
				t.Errorf("%s/%s: phase sum (%d, %d, %d) != cost (%d, %d, %d)",
					topo, q.Op, rounds, messages, drops, a.Cost.Rounds, a.Cost.Messages, a.Cost.Drops)
			}
		}
	}
}

// TestPhaseCostsUnderFaults extends the sum pin to a faulted run, where
// drops and blocked messages concentrate in specific phases.
func TestPhaseCostsUnderFaults(t *testing.T) {
	plan, err := ParseFaultPlan("crash:0.1@0.5")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(Config{N: 512, Seed: 3, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	a, err := nw.Average(uniformValues(512, 5))
	if err != nil {
		t.Fatal(err)
	}
	rounds, messages, drops := sumPhases(a.PhaseCosts)
	if rounds != a.Cost.Rounds || messages != a.Cost.Messages || drops != a.Cost.Drops {
		t.Errorf("faulted phase sum (%d, %d, %d) != cost (%d, %d, %d)",
			rounds, messages, drops, a.Cost.Rounds, a.Cost.Messages, a.Cost.Drops)
	}
}

// TestTelemetryIsReadOnlyTap pins the overhead contract's semantic half:
// attaching a sink (even with per-round sampling, which turns on the
// residual computation) changes no answer field.
func TestTelemetryIsReadOnlyTap(t *testing.T) {
	values := uniformValues(512, 9)
	run := func(topo Topology, tel *telemetry.Options) *Answer {
		nw, err := New(Config{N: 512, Seed: 21, Loss: 0.05, Topology: topo, Telemetry: tel})
		if err != nil {
			t.Fatal(err)
		}
		a, err := nw.Quantile(values, 0.75, 2)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	for _, topo := range []Topology{Complete, Chord} {
		plain := run(topo, nil)
		var buf telemetry.Buffer
		tapped := run(topo, &telemetry.Options{Sink: &buf, RoundEvery: 1})
		if !reflect.DeepEqual(plain, tapped) {
			t.Errorf("%s: telemetry perturbed the answer:\nplain:  %+v\ntapped: %+v", topo, plain, tapped)
		}
		if len(buf.Events()) == 0 {
			t.Errorf("%s: no events captured", topo)
		}
	}
}

// eventStream runs a fixed batch with telemetry attached and returns
// the captured events.
func eventStream(t *testing.T, workers, parallelism int, faultSpec string) []telemetry.Event {
	t.Helper()
	cfg := Config{N: 512, Seed: 33, Loss: 0.02, Workers: workers}
	if faultSpec != "" {
		p, err := ParseFaultPlan(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = p
	}
	var buf telemetry.Buffer
	cfg.Telemetry = &telemetry.Options{Sink: &buf, RoundEvery: 4}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	values := uniformValues(512, 13)
	queries := []Query{MaxOf(values), AverageOf(values), RankOf(values, 400), SumOf(values)}
	if _, _, err := nw.RunAll(queries, BatchOptions{Parallelism: parallelism}); err != nil {
		t.Fatal(err)
	}
	evs := buf.Events()
	// NaN != NaN would defeat DeepEqual below; canonicalize "no residual"
	// to a sentinel outside the residual's [0, inf) range.
	for i := range evs {
		if math.IsNaN(evs[i].Residual) {
			evs[i].Residual = -1
		}
	}
	return evs
}

// checkEventOrder pins the stream-ordering invariant: events sorted by
// (Run, Round, Seq), with Seq restarting per run.
func checkEventOrder(t *testing.T, label string, evs []telemetry.Event) {
	t.Helper()
	if len(evs) == 0 {
		t.Fatalf("%s: empty event stream", label)
	}
	lastRun, lastRound, lastSeq := 0, -1, uint64(0)
	for i, ev := range evs {
		if ev.Run < lastRun {
			t.Fatalf("%s: event %d run regressed: %d after %d", label, i, ev.Run, lastRun)
		}
		if ev.Run > lastRun {
			lastRun, lastRound, lastSeq = ev.Run, -1, 0
		}
		if ev.Round < lastRound {
			t.Fatalf("%s: event %d round regressed within run %d", label, i, ev.Run)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("%s: event %d seq not increasing within run %d", label, i, ev.Run)
		}
		lastRound, lastSeq = ev.Round, ev.Seq
	}
}

// TestEventOrderingDeterministic pins the satellite contract: the event
// stream is sorted by (run, round, seq) and bit-identical across
// Config.Workers values and RunAll parallelism degrees. Without a fault
// plan the parallel stream also matches sequential execution exactly;
// with one, the parallel path resolves every fault binding up front (its
// horizon pre-runs lead the stream instead of interleaving), so the pin
// there is identity across parallelism degrees and engine shard counts.
func TestEventOrderingDeterministic(t *testing.T) {
	for _, spec := range []string{"", "crash:0.05@0.4"} {
		sequential := eventStream(t, 0, 1, spec)
		checkEventOrder(t, "spec "+spec+" sequential", sequential)
		base := eventStream(t, 0, 2, spec)
		checkEventOrder(t, "spec "+spec+" parallel", base)
		if spec == "" && !reflect.DeepEqual(sequential, base) {
			t.Errorf("no-fault parallel stream differs from sequential (%d vs %d events)",
				len(base), len(sequential))
		}
		if got := eventStream(t, 4, 1, spec); !reflect.DeepEqual(sequential, got) {
			t.Errorf("spec %q: workers=4 stream differs from workers=0 (%d vs %d events)",
				spec, len(got), len(sequential))
		}
		for _, variant := range []struct {
			name                 string
			workers, parallelism int
		}{
			{"parallel=4", 0, 4},
			{"workers=4/parallel=4", 4, 4},
		} {
			got := eventStream(t, variant.workers, variant.parallelism, spec)
			if !reflect.DeepEqual(base, got) {
				t.Errorf("spec %q: %s event stream differs from parallel=2 (%d vs %d events)",
					spec, variant.name, len(got), len(base))
			}
		}
	}
}

// TestRoundInfoDeltas pins satellite 6: RoundInfo carries per-round
// counter deltas that sum back to the run totals, including Blocked
// under a partition plan.
func TestRoundInfoDeltas(t *testing.T) {
	plan, err := ParseFaultPlan("part:2@0.2..0.8")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(Config{N: 256, Seed: 17, Loss: 0.05, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	perRun := map[int]*RoundDelta{}
	lastCum := map[int]RoundInfo{}
	var lastRun int
	nw.Observe(ObserverFunc(func(ri RoundInfo) {
		d := perRun[ri.Run]
		if d == nil {
			d = &RoundDelta{}
			perRun[ri.Run] = d
		}
		d.Messages += ri.Delta.Messages
		d.Drops += ri.Delta.Drops
		d.Blocked += ri.Delta.Blocked
		d.Calls += ri.Delta.Calls
		lastCum[ri.Run] = ri
		lastRun = ri.Run
	}))
	a, err := nw.Average(uniformValues(256, 19))
	if err != nil {
		t.Fatal(err)
	}
	got := perRun[lastRun]
	if got == nil {
		t.Fatal("no rounds observed")
	}
	// The deltas telescope: summed over a run they reproduce the run's
	// last cumulative snapshot exactly. (The run total in Cost can exceed
	// the last snapshot by messages sent after the final Tick.)
	cum := lastCum[lastRun]
	if got.Messages != cum.Messages || got.Drops != cum.Drops {
		t.Errorf("delta sums (%d msgs, %d drops) != last snapshot (%d, %d)",
			got.Messages, got.Drops, cum.Messages, cum.Drops)
	}
	if a.Cost.Messages < cum.Messages || a.Cost.Drops < cum.Drops {
		t.Errorf("cost (%d, %d) below last snapshot (%d, %d)",
			a.Cost.Messages, a.Cost.Drops, cum.Messages, cum.Drops)
	}
	if got.Blocked == 0 {
		t.Error("partition plan produced no Blocked delta — satellite contract broken")
	}
}

// TestRoundInfoResidual checks the richer RoundInfo: during the gossip
// phase of an observed Average run the driver reports a residual, and it
// is finite at least once.
func TestRoundInfoResidual(t *testing.T) {
	nw, err := New(Config{N: 256, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	sawFinite := false
	sawPhase := false
	nw.Observe(ObserverFunc(func(ri RoundInfo) {
		if ri.Phase == "gossip" {
			sawPhase = true
			if !math.IsNaN(ri.Residual) {
				sawFinite = true
			}
		}
	}))
	if _, err := nw.Average(uniformValues(256, 29)); err != nil {
		t.Fatal(err)
	}
	if !sawPhase {
		t.Fatal("observer never saw the gossip phase")
	}
	if !sawFinite {
		t.Error("no finite residual observed during the gossip phase")
	}
}

// TestQuantileSessionChromeTrace is the acceptance criterion's trace
// half: a whole Quantile session renders as valid Chrome trace-event
// JSON with one span per protocol run.
func TestQuantileSessionChromeTrace(t *testing.T) {
	var buf telemetry.Buffer
	nw, err := New(Config{N: 512, Seed: 41, Telemetry: &telemetry.Options{Sink: &buf}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := nw.Quantile(uniformValues(512, 43), 0.9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := telemetry.WriteChromeTrace(&out, buf.Events()); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &tr); err != nil {
		t.Fatalf("quantile trace is not valid JSON: %v", err)
	}
	runSpans := 0
	for _, te := range tr.TraceEvents {
		if te.Ph == "X" && te.Tid == 1 {
			runSpans++
		}
	}
	if runSpans != a.Cost.Runs {
		t.Errorf("trace has %d run spans, answer billed %d runs", runSpans, a.Cost.Runs)
	}
}

// TestMomentsPhaseCosts pins the Moments pipeline's telescoped phase
// accounting (it reports Phases via counter snapshots rather than the
// shared pipeline helper).
func TestMomentsPhaseCosts(t *testing.T) {
	nw, err := New(Config{N: 256, Seed: 47, Loss: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	a, err := nw.Moments(uniformValues(256, 53))
	if err != nil {
		t.Fatal(err)
	}
	rounds, messages, drops := sumPhases(a.PhaseCosts)
	if rounds != a.Cost.Rounds || messages != a.Cost.Messages || drops != a.Cost.Drops {
		t.Errorf("moments phase sum (%d, %d, %d) != cost (%d, %d, %d)",
			rounds, messages, drops, a.Cost.Rounds, a.Cost.Messages, a.Cost.Drops)
	}
	for _, pc := range a.PhaseCosts {
		if pc.Messages < 0 || pc.Rounds < 0 {
			t.Errorf("negative phase bill: %+v", pc)
		}
	}
}

// TestTelemetryFaultEvents checks that a crash plan surfaces KindFault
// events carrying the transitioned node, and that run boundaries pair up.
func TestTelemetryFaultEvents(t *testing.T) {
	plan, err := ParseFaultPlan("crash:0.1@0.5")
	if err != nil {
		t.Fatal(err)
	}
	var buf telemetry.Buffer
	nw, err := New(Config{N: 256, Seed: 59, Faults: plan, Telemetry: &telemetry.Options{Sink: &buf}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Max(uniformValues(256, 61)); err != nil {
		t.Fatal(err)
	}
	starts, ends, faults := 0, 0, 0
	for _, ev := range buf.Events() {
		switch ev.Kind {
		case telemetry.KindRunStart:
			starts++
		case telemetry.KindRunEnd:
			ends++
		case telemetry.KindFault:
			faults++
			if !ev.Crash || ev.Node < 0 || ev.Node >= 256 {
				t.Errorf("malformed fault event: %+v", ev)
			}
		}
	}
	if starts == 0 || starts != ends {
		t.Errorf("run boundaries unbalanced: %d starts, %d ends", starts, ends)
	}
	if faults == 0 {
		t.Error("crash plan emitted no fault events")
	}
	// The engine is pooled across the horizon pre-run and the faulted
	// run; every event's phase must be a real label (Reset cleared state
	// between runs) and seq must restart per run.
	for _, ev := range buf.Events() {
		if ev.Kind == telemetry.KindRunStart && ev.Seq != 1 {
			t.Errorf("run %d: RunStart seq = %d, want 1", ev.Run, ev.Seq)
		}
	}
}

// TestTelemetryMetricsSink wires the live Metrics aggregator as the
// session sink and checks the counters line up with the answer's bill.
func TestTelemetryMetricsSink(t *testing.T) {
	m := telemetry.NewMetrics()
	nw, err := New(Config{N: 256, Seed: 67, Loss: 0.05, Telemetry: &telemetry.Options{Sink: m}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := nw.Quantile(uniformValues(256, 71), 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m.WritePrometheus(&out)
	text := out.String()
	if !bytes.Contains(out.Bytes(), []byte("drrgossip_runs_finished_total")) {
		t.Fatalf("metrics output missing run counter:\n%s", text)
	}
	_ = a
}

// sumDeltas folds an event stream's deltas per run and checks them
// against each run's closing totals.
func TestEventDeltasCloseRuns(t *testing.T) {
	var buf telemetry.Buffer
	nw, err := New(Config{N: 256, Seed: 73, Loss: 0.1, Telemetry: &telemetry.Options{Sink: &buf, RoundEvery: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Average(uniformValues(256, 79)); err != nil {
		t.Fatal(err)
	}
	sums := map[int]sim.Counters{}
	finals := map[int]sim.Counters{}
	for _, ev := range buf.Events() {
		s := sums[ev.Run]
		s.Rounds += ev.Delta.Rounds
		s.Messages += ev.Delta.Messages
		s.Drops += ev.Delta.Drops
		s.Blocked += ev.Delta.Blocked
		s.Calls += ev.Delta.Calls
		sums[ev.Run] = s
		if ev.Kind == telemetry.KindRunEnd {
			finals[ev.Run] = ev.Counters
		}
	}
	if len(finals) == 0 {
		t.Fatal("no completed runs in stream")
	}
	for run, final := range finals {
		if sums[run] != final {
			t.Errorf("run %d: delta sum %+v != final %+v", run, sums[run], final)
		}
	}
}
