package drrgossip

import (
	"context"
	"errors"
	"math"
	"testing"

	"drrgossip/internal/agg"
	"drrgossip/internal/faults"
)

func mustPlan(t *testing.T, spec string) *faults.Plan {
	t.Helper()
	p, err := ParseFaultPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The equivalence bar of the session redesign: every old top-level
// function must be bit-for-bit identical to the Network+Query path,
// across dense and sparse topologies, with and without a dynamic fault
// plan (the plan uses fractional timings, so the horizon-measurement
// pre-run machinery is exercised on both paths).
func TestOldEntryPointsBitIdenticalToSession(t *testing.T) {
	const n = 144 // 12x12 torus
	values := uniformValues(n, 71)
	plans := map[string]*faults.Plan{
		"static": nil,
		"churn":  mustPlan(t, "crash:0.15@0.5;rejoin@0.9"),
	}
	type oldFn func(cfg Config) (*Result, error)
	ops := []struct {
		q   Query
		old oldFn
	}{
		{MaxOf(values), func(cfg Config) (*Result, error) { return Max(cfg, values) }},
		{MinOf(values), func(cfg Config) (*Result, error) { return Min(cfg, values) }},
		{SumOf(values), func(cfg Config) (*Result, error) { return Sum(cfg, values) }},
		{CountOf(values), func(cfg Config) (*Result, error) { return Count(cfg, values) }},
		{AverageOf(values), func(cfg Config) (*Result, error) { return Average(cfg, values) }},
		{RankOf(values, 500), func(cfg Config) (*Result, error) { return Rank(cfg, values, 500) }},
	}
	for _, topo := range []Topology{Complete, Chord, Torus} {
		for planName, plan := range plans {
			// AllNodes materializes the session answers' full PerNode so
			// the loop below can compare it against the legacy vectors
			// (the session default is no materialization).
			cfg := Config{N: n, Seed: 73, Topology: topo, Faults: plan, SampleNodes: AllNodes}
			nw, err := New(cfg)
			if err != nil {
				t.Fatalf("%s/%s: New: %v", topo, planName, err)
			}
			for _, op := range ops {
				t.Run(topo.String()+"/"+planName+"/"+op.q.Op.String(), func(t *testing.T) {
					want, err := op.old(cfg)
					if err != nil {
						t.Fatalf("old path: %v", err)
					}
					got, err := nw.Run(op.q)
					if err != nil {
						t.Fatalf("session path: %v", err)
					}
					if got.Value != want.Value || got.Cost.Rounds != want.Rounds ||
						got.Cost.Messages != want.Messages || got.Cost.Drops != want.Drops ||
						got.Alive != want.Alive || got.Consensus != want.Consensus ||
						got.Trees != want.Trees || got.FaultEvents != want.FaultEvents ||
						got.FaultCrashes != want.FaultCrashes || got.FaultRevives != want.FaultRevives {
						t.Fatalf("session drifted from one-shot:\n old %+v\n new value=%v cost=%+v alive=%d consensus=%v trees=%d faults=%d/%d/%d",
							want, got.Value, got.Cost, got.Alive, got.Consensus, got.Trees,
							got.FaultEvents, got.FaultCrashes, got.FaultRevives)
					}
					for i := range want.PerNode {
						a, b := got.PerNode[i], want.PerNode[i]
						if a != b && !(a != a && b != b) { // NaN-safe
							t.Fatalf("PerNode[%d] = %v, want %v", i, a, b)
						}
					}
				})
			}
		}
	}
}

// A session builds its overlay exactly once, and repeated queries are
// deterministic: the second call sees the same messages and seed-derived
// randomness as the first, and both match the one-shot path.
func TestSessionReusesOneOverlay(t *testing.T) {
	cfg := Config{N: 256, Seed: 75, Topology: Chord}
	values := uniformValues(256, 76)

	before := overlayBuilds.Load()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := nw.Average(values)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Average(values)
	if err != nil {
		t.Fatal(err)
	}
	if overlayBuilds.Load()-before != 1 {
		t.Fatalf("session built %d overlays, want 1", overlayBuilds.Load()-before)
	}
	if a.Value != b.Value || a.Cost != b.Cost {
		t.Fatalf("repeat query drifted: %+v vs %+v", a, b)
	}
	oneShot, err := Average(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != oneShot.Value || a.Cost.Messages != oneShot.Messages {
		t.Fatalf("session differs from one-shot: %v/%d vs %v/%d",
			a.Value, a.Cost.Messages, oneShot.Value, oneShot.Messages)
	}
	if st := nw.Stats(); st.Queries != 2 || st.ProtocolRuns != 2 || !st.OverlayBuilt {
		t.Fatalf("session stats off: %+v", st)
	}
}

// The amortization acceptance bar: a composite query builds the overlay
// and binds the fault plan once per call — one horizon pre-run and one
// binding for all of Histogram's edges (and one per operation kind for
// Quantile), instead of one per internal Rank step as before the
// session redesign.
func TestCompositeQueriesAmortizeSetup(t *testing.T) {
	values := uniformValues(256, 78)
	cfg := Config{N: 256, Seed: 77, Topology: Chord,
		Faults: mustPlan(t, "crash:0.2@0.5")} // fractional timing: needs a horizon

	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := nw.Histogram(values, []float64{200, 400, 600})
	if err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	// Two operation kinds: rank (shared by all three edges) and the count
	// that measures the open bucket's population — not one per edge.
	if st.HorizonRuns != 2 || st.PlanBinds != 2 {
		t.Fatalf("histogram should measure and bind once per op kind: %+v", st)
	}
	if st.ProtocolRuns != 2+hist.Cost.Runs || hist.Cost.Runs != 4 {
		t.Fatalf("histogram runs off: stats %+v, cost %+v", st, hist.Cost)
	}

	nw2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, err := nw2.Quantile(values, 0.5, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	st2 := nw2.Stats()
	// Four operation kinds (min, max, count, rank) measure and bind once
	// each; every further bisection step reuses the rank binding.
	if st2.HorizonRuns != 4 || st2.PlanBinds != 4 {
		t.Fatalf("quantile should bind once per op kind: %+v", st2)
	}
	if q.Cost.Runs <= 4 || st2.ProtocolRuns != 4+q.Cost.Runs {
		t.Fatalf("quantile pre-run accounting off: stats %+v, cost %+v", st2, q.Cost)
	}

	// The legacy wrappers go through a single-use session, so a one-shot
	// Histogram call also builds exactly one overlay.
	before := overlayBuilds.Load()
	if _, err := Histogram(cfg, values, []float64{200, 400, 600}); err != nil {
		t.Fatal(err)
	}
	if got := overlayBuilds.Load() - before; got != 1 {
		t.Fatalf("legacy Histogram built %d overlays, want 1", got)
	}
}

// Satellite regression: Histogram's open last bucket must take its alive
// count from the final Rank run (which reflects the fault plan's mid-run
// crashes), not from a fresh static engine. With 30% of the nodes
// crashing at round 3 — before Phase II banks any tree sums — every Rank
// counts only survivors, so a static alive count would inflate the open
// bucket by the crashed ~30%.
func TestHistogramAliveUnderChurnPlan(t *testing.T) {
	const n = 512
	cfg := Config{N: n, Seed: 79, Faults: mustPlan(t, "crash:0.3@3r")}
	values := uniformValues(n, 80) // uniform [0, 1000)
	res, err := Histogram(cfg, values, []float64{250, 2000})
	if err != nil {
		t.Fatal(err)
	}
	ans, err2 := func() (*Answer, error) {
		nw, err := New(cfg)
		if err != nil {
			return nil, err
		}
		return nw.Histogram(values, []float64{250, 2000})
	}()
	if err2 != nil {
		t.Fatal(err2)
	}
	if ans.Alive >= n || ans.Alive < n/2 {
		t.Fatalf("final alive %d does not reflect the crash plan", ans.Alive)
	}
	// Every value is <= 2000, so the open bucket above the last edge must
	// be (approximately) empty — under the old static-engine accounting it
	// held the ~154 crashed nodes.
	last := res.Counts[len(res.Counts)-1]
	if math.Abs(last) > 2 {
		t.Fatalf("open bucket = %v, want ~0 (static-alive regression)", last)
	}
	// The population (and hence the bucket total) is measured by a Count
	// run riding the same dynamics as the ranks — billed as one extra run.
	if res.Runs != 3 {
		t.Fatalf("runs = %d, want 2 edges + 1 count", res.Runs)
	}
	total := 0.0
	for _, c := range res.Counts {
		total += c
	}
	if math.Abs(total-float64(ans.Alive)) > 2 {
		t.Fatalf("bucket total %v inconsistent with surviving population %d", total, ans.Alive)
	}
}

// The post-banking counterpart: when the plan crashes nodes *after*
// Phase II has banked the tree sums, the Rank counts reflect the
// pre-crash population. The open bucket must stay consistent with the
// other buckets (non-negative) instead of subtracting the smaller
// end-of-run alive count — the Count-run population makes that hold in
// every fault scenario.
func TestHistogramStaysNonNegativeUnderLateCrash(t *testing.T) {
	const n = 256
	cfg := Config{N: n, Seed: 95, Faults: mustPlan(t, "crash:0.5@0.5")}
	values := uniformValues(n, 96) // uniform [0, 1000)
	res, err := Histogram(cfg, values, []float64{500, 1000})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for b, c := range res.Counts {
		if c < 0 {
			t.Fatalf("negative bucket %d: %v (population inconsistent with rank counts)", b, c)
		}
		total += c
	}
	// All values sit below the last edge, so the open bucket is empty and
	// the total is the banked (pre-crash) population, not the halved
	// end-of-run alive count.
	if last := res.Counts[len(res.Counts)-1]; math.Abs(last) > 2 {
		t.Fatalf("open bucket = %v, want ~0", last)
	}
	if math.Abs(total-n) > 2 {
		t.Fatalf("bucket total %v, want the banked population ~%d", total, n)
	}
}

// Moments now participates in fault plans like every other query (the
// pre-session implementation silently ignored Config.Faults).
func TestMomentsAppliesFaultPlan(t *testing.T) {
	const n = 512
	cfg := Config{N: n, Seed: 97, Faults: mustPlan(t, "crash:0.2@0.5")}
	values := uniformValues(n, 98)
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := nw.Moments(values)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ans.Mean) || math.IsInf(ans.Mean, 0) || math.IsNaN(ans.Std) {
		t.Fatalf("faulty moments not finite: %+v", ans)
	}
	if ans.FaultEvents == 0 || ans.FaultCrashes == 0 || ans.Alive >= n {
		t.Fatalf("plan did not apply to moments: %+v", ans)
	}
	legacy, err := Moments(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Mean != ans.Mean || legacy.Variance != ans.Variance {
		t.Fatalf("legacy wrapper diverged from session: %+v vs %+v", legacy, ans)
	}
}

// Satellite: the bisection cap surfaces as Converged == false instead of
// a silently looser value, and lossy runs accumulate Drops into the
// composite cost totals.
func TestQuantileConvergenceReporting(t *testing.T) {
	const n = 128
	cfg := Config{N: n, Seed: 81, Loss: 0.05}
	values := uniformValues(n, 82)

	ok, err := Quantile(cfg, values, 0.5, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok.Converged {
		t.Fatalf("easy quantile did not converge: %+v", ok)
	}
	if ok.Drops == 0 {
		t.Fatal("quantile cost did not accumulate Drops under loss")
	}

	// A tolerance far below float64 resolution can never be met: the
	// bisection stalls at ulp scale and must hit the run cap.
	capped, err := Quantile(cfg, values, 0.5, 1e-300)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Converged {
		t.Fatalf("impossible tolerance reported Converged: %+v", capped)
	}
	if capped.Runs != maxQuantileRuns {
		t.Fatalf("cap hit at %d runs, want %d", capped.Runs, maxQuantileRuns)
	}

	hist, err := Histogram(cfg, values, []float64{300, 600})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Drops == 0 {
		t.Fatal("histogram cost did not accumulate Drops under loss")
	}
}

// RunAll executes a batch against one session and reports both per-query
// answers and the aggregate bill.
func TestRunAllBatch(t *testing.T) {
	const n = 256
	values := uniformValues(n, 84)
	nw, err := New(Config{N: n, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Query{MaxOf(values), AverageOf(values), HistogramOf(values, []float64{500})}
	answers, bill, err := nw.RunAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(batch) {
		t.Fatalf("%d answers for %d queries", len(answers), len(batch))
	}
	var want Cost
	for i, a := range answers {
		if a.Op != batch[i].Op {
			t.Fatalf("answer %d is %s, want %s", i, a.Op, batch[i].Op)
		}
		want = want.Add(a.Cost)
	}
	if bill != want {
		t.Fatalf("aggregate bill %+v != summed costs %+v", bill, want)
	}
	if answers[0].Value != Exact(Config{N: n, Seed: 83}, "max", values) {
		t.Fatalf("batched Max = %v", answers[0].Value)
	}
	if len(answers[2].Counts) != 2 {
		t.Fatalf("batched histogram counts: %v", answers[2].Counts)
	}
}

// RunContext stops composite queries between protocol runs once the
// context is cancelled.
func TestRunContextCancellation(t *testing.T) {
	const n = 128
	values := uniformValues(n, 86)
	nw, err := New(Config{N: n, Seed: 85})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := nw.RunContext(ctx, MaxOf(values)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: %v, want context.Canceled", err)
	}

	// Cancel from an observer once the second protocol run starts: the
	// quantile must stop after that run instead of finishing its ~12.
	nw2, err := New(Config{N: n, Seed: 85})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	nw2.Observe(ObserverFunc(func(ri RoundInfo) {
		if ri.Run >= 2 {
			cancel2()
		}
	}))
	if _, err := nw2.RunContext(ctx2, QuantileOf(values, 0.5, 1.0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-quantile cancel: %v, want context.Canceled", err)
	}
	if st := nw2.Stats(); st.ProtocolRuns > 3 {
		t.Fatalf("cancellation did not stop the bisection: %+v", st)
	}
}

// Observers stream every round with phase attribution and cannot perturb
// the run.
func TestObserverStreamsRounds(t *testing.T) {
	const n = 256
	values := uniformValues(n, 88)
	cfg := Config{N: n, Seed: 87}

	plain, err := Average(cfg, values)
	if err != nil {
		t.Fatal(err)
	}

	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var infos []RoundInfo
	nw.Observe(ObserverFunc(func(ri RoundInfo) { infos = append(infos, ri) }))
	observed, err := nw.Average(values)
	if err != nil {
		t.Fatal(err)
	}

	if observed.Value != plain.Value || observed.Cost.Messages != plain.Messages ||
		observed.Cost.Rounds != plain.Rounds {
		t.Fatalf("observer perturbed the run: %+v vs %+v", observed, plain)
	}
	if len(infos) != plain.Rounds {
		t.Fatalf("observed %d rounds, run took %d", len(infos), plain.Rounds)
	}
	phases := map[string]bool{}
	for i, ri := range infos {
		if ri.Round != i+1 {
			t.Fatalf("round %d reported as %d", i+1, ri.Round)
		}
		if ri.Run != 1 || ri.Alive != n {
			t.Fatalf("bad round info: %+v", ri)
		}
		phases[ri.Phase] = true
	}
	for _, want := range []string{"drr", "aggregate", "gossip", "broadcast"} {
		if !phases[want] {
			t.Fatalf("phase %q never observed (saw %v)", want, phases)
		}
	}
	// Messages sent in the final round are counted after the last Tick,
	// so the last snapshot trails the final total by at most that round's
	// sends — but never exceeds it.
	if last := infos[len(infos)-1]; last.Messages == 0 || last.Messages > plain.Messages {
		t.Fatalf("final observed messages %d out of range (run total %d)", last.Messages, plain.Messages)
	}
}

// ExactOf is the error-returning replacement for the deprecated Exact:
// it covers rank and quantile, and rejects unknown operations and
// mismatched input instead of panicking.
func TestExactOf(t *testing.T) {
	const n = 128
	cfg := Config{N: n, Seed: 89, CrashFraction: 0.2}
	values := uniformValues(n, 90)

	rank, err := ExactOf(cfg, RankOf(values, 400))
	if err != nil {
		t.Fatal(err)
	}
	alive := agg.Subset(values, cfg.engine().AliveIDs())
	if want := agg.Exact(agg.Rank, alive, 400); rank != want {
		t.Fatalf("ExactOf(rank) = %v, want %v", rank, want)
	}
	if q, err := ExactOf(cfg, QuantileOf(values, 0.5, 0)); err != nil || q != agg.Quantile(alive, 0.5) {
		t.Fatalf("ExactOf(quantile) = %v, %v", q, err)
	}
	mx, err := ExactOf(cfg, MaxOf(values))
	if err != nil || mx != Exact(cfg, "max", values) {
		t.Fatalf("ExactOf(max) = %v, %v", mx, err)
	}
	if _, err := ExactOf(cfg, MomentsOf(values)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("moments should have no scalar reference: %v", err)
	}
	if _, err := ExactOf(cfg, Query{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero query accepted: %v", err)
	}
	if _, err := ExactOf(cfg, MaxOf(values[:10])); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("length mismatch accepted: %v", err)
	}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := nw.Exact(MaxOf(values)); err != nil || v != mx {
		t.Fatalf("Network.Exact = %v, %v", v, err)
	}
}

// Moments through the session carries the full answer (mean, variance,
// std) and matches the legacy wrapper.
func TestMomentsViaSession(t *testing.T) {
	const n = 512
	cfg := Config{N: n, Seed: 91}
	values := uniformValues(n, 92)
	legacy, err := Moments(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := nw.Moments(values)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mean != legacy.Mean || ans.Variance != legacy.Variance || ans.Std != legacy.Std ||
		ans.Value != legacy.Mean || ans.Cost.Messages != legacy.Messages {
		t.Fatalf("session moments drifted: %+v vs %+v", ans, legacy)
	}
	if _, err := New(Config{N: n, Seed: 91, Topology: Chord}); err != nil {
		t.Fatal(err)
	} else if nw2, _ := New(Config{N: n, Seed: 91, Topology: Chord}); nw2 != nil {
		if _, err := nw2.Moments(values); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("sparse moments accepted: %v", err)
		}
	}
}

// Unknown query operations are rejected, not misrouted.
func TestUnknownOpRejected(t *testing.T) {
	nw, err := New(Config{N: 16, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(Query{Op: Op(99), Values: make([]float64, 16)}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown op: %v, want ErrBadConfig", err)
	}
}
