package drrgossip

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"drrgossip/internal/agg"
)

func uniformValues(n int, seed uint64) []float64 {
	return agg.GenUniform(n, 0, 1000, seed)
}

func TestMaxFacade(t *testing.T) {
	cfg := Config{N: 1024, Seed: 1}
	values := uniformValues(1024, 2)
	res, err := Max(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Exact(cfg, "max", values) {
		t.Fatalf("Max = %v, want %v", res.Value, Exact(cfg, "max", values))
	}
	if !res.Consensus || res.Trees == 0 || res.Rounds == 0 || res.Messages == 0 {
		t.Fatalf("result fields missing: %+v", res)
	}
	if res.Alive != 1024 {
		t.Fatalf("Alive = %d", res.Alive)
	}
}

func TestMinFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 3}
	values := uniformValues(512, 4)
	res, err := Min(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Exact(cfg, "min", values) {
		t.Fatalf("Min = %v", res.Value)
	}
}

func TestAverageFacade(t *testing.T) {
	cfg := Config{N: 1024, Seed: 5}
	values := uniformValues(1024, 6)
	res, err := Average(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(cfg, "average", values)
	if agg.RelError(res.Value, want) > 1e-6 {
		t.Fatalf("Average = %v, want %v", res.Value, want)
	}
}

func TestSumCountFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 7}
	values := uniformValues(512, 8)
	sum, err := Sum(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if agg.RelError(sum.Value, Exact(cfg, "sum", values)) > 1e-6 {
		t.Fatalf("Sum = %v", sum.Value)
	}
	count, err := Count(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if agg.RelError(count.Value, 512) > 1e-6 {
		t.Fatalf("Count = %v", count.Value)
	}
}

func TestRankFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 9}
	values := uniformValues(512, 10)
	q := 300.0
	res, err := Rank(cfg, values, q)
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Rank, values, q)
	if agg.RelError(res.Value, want) > 1e-6 {
		t.Fatalf("Rank = %v, want %v", res.Value, want)
	}
}

func TestQuantileFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 11}
	values := uniformValues(512, 12)
	res, err := Quantile(cfg, values, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Quantile(values, 0.5)
	if math.Abs(res.Value-want) > 5 {
		t.Fatalf("median ≈ %v, want ~%v", res.Value, want)
	}
	if res.Runs < 4 || res.Messages == 0 {
		t.Fatalf("quantile accounting off: %+v", res)
	}
}

func TestChordTopologyFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 13, Topology: Chord}
	values := uniformValues(512, 14)
	res, err := Max(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Exact(cfg, "max", values) || !res.Consensus {
		t.Fatalf("chord Max = %v", res.Value)
	}
	avg, err := Average(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if agg.RelError(avg.Value, Exact(cfg, "average", values)) > 1e-5 {
		t.Fatalf("chord Average = %v", avg.Value)
	}
	mn, err := Min(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if mn.Value != Exact(cfg, "min", values) {
		t.Fatalf("chord Min = %v", mn.Value)
	}
}

func TestFailuresFacade(t *testing.T) {
	cfg := Config{N: 2048, Seed: 15, Loss: 0.1, CrashFraction: 0.2}
	values := uniformValues(2048, 16)
	res, err := Max(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Exact(cfg, "max", values) {
		t.Fatalf("Max under failures = %v", res.Value)
	}
	if res.Alive >= 2048 || res.Drops == 0 {
		t.Fatalf("failure accounting off: alive=%d drops=%d", res.Alive, res.Drops)
	}
}

func TestConfigValidation(t *testing.T) {
	values := uniformValues(8, 1)
	cases := []Config{
		{N: 1, Seed: 1},
		{N: 8, Seed: 1, Loss: 1.0},
		{N: 8, Seed: 1, Loss: -0.5},
		{N: 8, Seed: 1, CrashFraction: 1.0},
		{N: 8, Seed: 1, Topology: Chord, CrashFraction: 0.5},
		{N: 8, Seed: 1, Topology: Topology(42)},
	}
	for i, cfg := range cases {
		vals := values
		if cfg.N == 1 {
			vals = values[:1]
		}
		if _, err := Max(cfg, vals); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: error = %v, want ErrBadConfig", i, err)
		}
	}
	if _, err := Max(Config{N: 8, Seed: 1}, values[:4]); !errors.Is(err, ErrBadConfig) {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := Sum(Config{N: 8, Seed: 1, Topology: Chord}, values); !errors.Is(err, ErrBadConfig) {
		t.Fatal("chord Sum not rejected")
	}
	if _, err := Quantile(Config{N: 8, Seed: 1}, values, 1.5, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatal("phi out of range not rejected")
	}
}

func TestDeterministicFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 17}
	values := uniformValues(512, 18)
	a, err := Average(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Average(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Messages != b.Messages || a.Rounds != b.Rounds {
		t.Fatal("facade runs not reproducible")
	}
}

func TestExactPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exact with unknown kind did not panic")
		}
	}()
	Exact(Config{N: 4, Seed: 1}, "median", make([]float64, 4))
}

// Property: for random seeds, Max/Min/Average stay correct and consistent
// (Min <= Average <= Max) through the public API.
func TestFacadeProperty(t *testing.T) {
	f := func(seed uint16) bool {
		cfg := Config{N: 256, Seed: uint64(seed)}
		values := uniformValues(256, uint64(seed)+99)
		mx, err := Max(cfg, values)
		if err != nil {
			return false
		}
		mn, err := Min(cfg, values)
		if err != nil {
			return false
		}
		av, err := Average(cfg, values)
		if err != nil {
			return false
		}
		return mn.Value <= av.Value && av.Value <= mx.Value &&
			mx.Value == Exact(cfg, "max", values) &&
			mn.Value == Exact(cfg, "min", values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramFacade(t *testing.T) {
	cfg := Config{N: 1024, Seed: 19}
	values := uniformValues(1024, 20) // uniform [0,1000)
	edges := []float64{250, 500, 750}
	res, err := Histogram(cfg, values, edges)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) != 4 {
		t.Fatalf("bucket count %d", len(res.Counts))
	}
	total := 0.0
	for b, c := range res.Counts {
		if c < 0 {
			t.Fatalf("negative bucket %d: %v", b, c)
		}
		total += c
	}
	if total != 1024 {
		t.Fatalf("histogram total %v != n", total)
	}
	// Cross-check each bucket against the exact counts.
	exact := make([]float64, 4)
	for _, v := range values {
		switch {
		case v <= 250:
			exact[0]++
		case v <= 500:
			exact[1]++
		case v <= 750:
			exact[2]++
		default:
			exact[3]++
		}
	}
	for b := range exact {
		if math.Abs(res.Counts[b]-exact[b]) > 0.5 {
			t.Fatalf("bucket %d = %v, want %v", b, res.Counts[b], exact[b])
		}
	}
	if res.Runs != 3 || res.Messages == 0 {
		t.Fatalf("accounting off: %+v", res)
	}
}

func TestHistogramValidation(t *testing.T) {
	cfg := Config{N: 64, Seed: 21}
	values := uniformValues(64, 22)
	if _, err := Histogram(cfg, values, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatal("empty edges accepted")
	}
	if _, err := Histogram(cfg, values, []float64{5, 5}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("non-increasing edges accepted")
	}
	chordCfg := cfg
	chordCfg.Topology = Chord
	if _, err := Histogram(chordCfg, values, []float64{5}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("chord histogram accepted")
	}
}

func TestLargeNetworkStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	// One big end-to-end run: 65536 nodes, loss, crashes.
	n := 1 << 16
	cfg := Config{N: n, Seed: 23, Loss: 0.05, CrashFraction: 0.1}
	values := uniformValues(n, 24)
	res, err := Max(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Exact(cfg, "max", values) || !res.Consensus {
		t.Fatalf("large-n Max = %v (consensus %v)", res.Value, res.Consensus)
	}
	// The paper's bounds at scale: rounds ~ log n, msgs/node ~ loglog n.
	if float64(res.Rounds) > 25*math.Log2(float64(n)) {
		t.Fatalf("rounds %d at n=64k", res.Rounds)
	}
	if perNode := float64(res.Messages) / float64(n); perNode > 50 {
		t.Fatalf("msgs/node %v at n=64k", perNode)
	}
}

func TestQuantileWithCrashes(t *testing.T) {
	// Regression: every bisection step must range over the SAME surviving
	// population (the crash set is seed-derived, so per-step seed changes
	// would make the search inconsistent).
	cfg := Config{N: 1024, Seed: 25, CrashFraction: 0.25}
	values := uniformValues(1024, 26)
	res, err := Quantile(cfg, values, 0.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	alive := agg.Subset(values, aliveIdx(cfg, len(values)))
	want := agg.Quantile(alive, 0.5)
	if math.Abs(res.Value-want) > 10 {
		t.Fatalf("median over survivors ≈ %v, want ~%v", res.Value, want)
	}
}

func TestHistogramWithCrashes(t *testing.T) {
	cfg := Config{N: 1024, Seed: 27, CrashFraction: 0.2}
	values := uniformValues(1024, 28)
	res, err := Histogram(cfg, values, []float64{333, 666})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for b, c := range res.Counts {
		if c < 0 {
			t.Fatalf("negative bucket %d: %v (inconsistent crash sets)", b, c)
		}
		total += c
	}
	if total != Exact(cfg, "count", values) {
		t.Fatalf("histogram total %v != alive count %v", total, Exact(cfg, "count", values))
	}
}

// aliveIdx reproduces the engine's crash set for reference computations.
func aliveIdx(cfg Config, n int) []int {
	return cfg.engine().AliveIDs()
}
