package drrgossip

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"drrgossip/internal/agg"
)

func uniformValues(n int, seed uint64) []float64 {
	return agg.GenUniform(n, 0, 1000, seed)
}

func TestMaxFacade(t *testing.T) {
	cfg := Config{N: 1024, Seed: 1}
	values := uniformValues(1024, 2)
	res, err := Max(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Exact(cfg, "max", values) {
		t.Fatalf("Max = %v, want %v", res.Value, Exact(cfg, "max", values))
	}
	if !res.Consensus || res.Trees == 0 || res.Rounds == 0 || res.Messages == 0 {
		t.Fatalf("result fields missing: %+v", res)
	}
	if res.Alive != 1024 {
		t.Fatalf("Alive = %d", res.Alive)
	}
}

func TestMinFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 3}
	values := uniformValues(512, 4)
	res, err := Min(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Exact(cfg, "min", values) {
		t.Fatalf("Min = %v", res.Value)
	}
}

func TestAverageFacade(t *testing.T) {
	cfg := Config{N: 1024, Seed: 5}
	values := uniformValues(1024, 6)
	res, err := Average(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(cfg, "average", values)
	if agg.RelError(res.Value, want) > 1e-6 {
		t.Fatalf("Average = %v, want %v", res.Value, want)
	}
}

func TestSumCountFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 7}
	values := uniformValues(512, 8)
	sum, err := Sum(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if agg.RelError(sum.Value, Exact(cfg, "sum", values)) > 1e-6 {
		t.Fatalf("Sum = %v", sum.Value)
	}
	count, err := Count(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if agg.RelError(count.Value, 512) > 1e-6 {
		t.Fatalf("Count = %v", count.Value)
	}
}

func TestRankFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 9}
	values := uniformValues(512, 10)
	q := 300.0
	res, err := Rank(cfg, values, q)
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Rank, values, q)
	if agg.RelError(res.Value, want) > 1e-6 {
		t.Fatalf("Rank = %v, want %v", res.Value, want)
	}
}

func TestQuantileFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 11}
	values := uniformValues(512, 12)
	res, err := Quantile(cfg, values, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Quantile(values, 0.5)
	if math.Abs(res.Value-want) > 5 {
		t.Fatalf("median ≈ %v, want ~%v", res.Value, want)
	}
	if res.Runs < 4 || res.Messages == 0 {
		t.Fatalf("quantile accounting off: %+v", res)
	}
}

func TestChordTopologyFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 13, Topology: Chord}
	values := uniformValues(512, 14)
	res, err := Max(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Exact(cfg, "max", values) || !res.Consensus {
		t.Fatalf("chord Max = %v", res.Value)
	}
	avg, err := Average(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if agg.RelError(avg.Value, Exact(cfg, "average", values)) > 1e-5 {
		t.Fatalf("chord Average = %v", avg.Value)
	}
	mn, err := Min(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if mn.Value != Exact(cfg, "min", values) {
		t.Fatalf("chord Min = %v", mn.Value)
	}
}

func TestFailuresFacade(t *testing.T) {
	cfg := Config{N: 2048, Seed: 15, Loss: 0.1, CrashFraction: 0.2}
	values := uniformValues(2048, 16)
	res, err := Max(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Exact(cfg, "max", values) {
		t.Fatalf("Max under failures = %v", res.Value)
	}
	if res.Alive >= 2048 || res.Drops == 0 {
		t.Fatalf("failure accounting off: alive=%d drops=%d", res.Alive, res.Drops)
	}
}

func TestConfigValidation(t *testing.T) {
	values := uniformValues(8, 1)
	cases := []Config{
		{N: 1, Seed: 1},
		{N: 8, Seed: 1, Loss: 1.0},
		{N: 8, Seed: 1, Loss: -0.5},
		{N: 8, Seed: 1, CrashFraction: 1.0},
		{N: 8, Seed: 1, Topology: Chord, CrashFraction: 0.5},
		{N: 8, Seed: 1, Topology: Topology{name: "bogus"}},
		{N: 6, Seed: 1, Topology: Hypercube},          // 6 is not a power of two
		{N: 14, Seed: 1, Topology: Torus},             // 14 = 2*7 has no rows,cols >= 3 split
		{N: 8, Seed: 1, Topology: RandomRegular(2)},   // degree below the d >= 3 floor
		{N: 9, Seed: 1, Topology: RandomRegular(3)},   // n*d odd
		{N: 8, Seed: 1, Topology: RandomRegular(8)},   // d >= n
		{N: 5, Seed: 1, Topology: SmallWorldK(2)},     // n < 2k+2
		{N: 2, Seed: 1, Topology: Ring},               // ring needs n >= 3
		{N: 4, Seed: 1, Topology: ScaleFree},          // n <= m+1
		{N: 16, Seed: 1, Topology: Torus, Loss: -0.1}, // bad loss still rejected
	}
	for i, cfg := range cases {
		vals := values
		if cfg.N == 1 {
			vals = values[:1]
		}
		if _, err := Max(cfg, vals); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: error = %v, want ErrBadConfig", i, err)
		}
	}
	if _, err := Max(Config{N: 8, Seed: 1}, values[:4]); !errors.Is(err, ErrBadConfig) {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := Quantile(Config{N: 8, Seed: 1}, values, 1.5, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatal("phi out of range not rejected")
	}
}

func TestDeterministicFacade(t *testing.T) {
	cfg := Config{N: 512, Seed: 17}
	values := uniformValues(512, 18)
	a, err := Average(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Average(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Messages != b.Messages || a.Rounds != b.Rounds {
		t.Fatal("facade runs not reproducible")
	}
}

func TestExactPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exact with unknown kind did not panic")
		}
	}()
	Exact(Config{N: 4, Seed: 1}, "median", make([]float64, 4))
}

// Property: for random seeds, Max/Min/Average stay correct and consistent
// (Min <= Average <= Max) through the public API.
func TestFacadeProperty(t *testing.T) {
	f := func(seed uint16) bool {
		cfg := Config{N: 256, Seed: uint64(seed)}
		values := uniformValues(256, uint64(seed)+99)
		mx, err := Max(cfg, values)
		if err != nil {
			return false
		}
		mn, err := Min(cfg, values)
		if err != nil {
			return false
		}
		av, err := Average(cfg, values)
		if err != nil {
			return false
		}
		return mn.Value <= av.Value && av.Value <= mx.Value &&
			mx.Value == Exact(cfg, "max", values) &&
			mn.Value == Exact(cfg, "min", values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramFacade(t *testing.T) {
	cfg := Config{N: 1024, Seed: 19}
	values := uniformValues(1024, 20) // uniform [0,1000)
	edges := []float64{250, 500, 750}
	res, err := Histogram(cfg, values, edges)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) != 4 {
		t.Fatalf("bucket count %d", len(res.Counts))
	}
	total := 0.0
	for b, c := range res.Counts {
		if c < 0 {
			t.Fatalf("negative bucket %d: %v", b, c)
		}
		total += c
	}
	if total != 1024 {
		t.Fatalf("histogram total %v != n", total)
	}
	// Cross-check each bucket against the exact counts.
	exact := make([]float64, 4)
	for _, v := range values {
		switch {
		case v <= 250:
			exact[0]++
		case v <= 500:
			exact[1]++
		case v <= 750:
			exact[2]++
		default:
			exact[3]++
		}
	}
	for b := range exact {
		if math.Abs(res.Counts[b]-exact[b]) > 0.5 {
			t.Fatalf("bucket %d = %v, want %v", b, res.Counts[b], exact[b])
		}
	}
	if res.Runs != 3 || res.Messages == 0 {
		t.Fatalf("accounting off: %+v", res)
	}
}

func TestHistogramValidation(t *testing.T) {
	cfg := Config{N: 64, Seed: 21}
	values := uniformValues(64, 22)
	if _, err := Histogram(cfg, values, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatal("empty edges accepted")
	}
	if _, err := Histogram(cfg, values, []float64{5, 5}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("non-increasing edges accepted")
	}
	badCfg := cfg
	badCfg.Topology = Topology{name: "bogus"}
	if _, err := Histogram(badCfg, values, []float64{5}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("bogus-topology histogram accepted")
	}
}

func TestLargeNetworkStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	// One big end-to-end run: 65536 nodes, loss, crashes.
	n := 1 << 16
	cfg := Config{N: n, Seed: 23, Loss: 0.05, CrashFraction: 0.1}
	values := uniformValues(n, 24)
	res, err := Max(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Exact(cfg, "max", values) || !res.Consensus {
		t.Fatalf("large-n Max = %v (consensus %v)", res.Value, res.Consensus)
	}
	// The paper's bounds at scale: rounds ~ log n, msgs/node ~ loglog n.
	if float64(res.Rounds) > 25*math.Log2(float64(n)) {
		t.Fatalf("rounds %d at n=64k", res.Rounds)
	}
	if perNode := float64(res.Messages) / float64(n); perNode > 50 {
		t.Fatalf("msgs/node %v at n=64k", perNode)
	}
}

func TestQuantileWithCrashes(t *testing.T) {
	// Regression: every bisection step must range over the SAME surviving
	// population (the crash set is seed-derived, so per-step seed changes
	// would make the search inconsistent).
	cfg := Config{N: 1024, Seed: 25, CrashFraction: 0.25}
	values := uniformValues(1024, 26)
	res, err := Quantile(cfg, values, 0.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	alive := agg.Subset(values, aliveIdx(cfg, len(values)))
	want := agg.Quantile(alive, 0.5)
	if math.Abs(res.Value-want) > 10 {
		t.Fatalf("median over survivors ≈ %v, want ~%v", res.Value, want)
	}
}

func TestHistogramWithCrashes(t *testing.T) {
	cfg := Config{N: 1024, Seed: 27, CrashFraction: 0.2}
	values := uniformValues(1024, 28)
	res, err := Histogram(cfg, values, []float64{333, 666})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for b, c := range res.Counts {
		if c < 0 {
			t.Fatalf("negative bucket %d: %v (inconsistent crash sets)", b, c)
		}
		total += c
	}
	if total != Exact(cfg, "count", values) {
		t.Fatalf("histogram total %v != alive count %v", total, Exact(cfg, "count", values))
	}
}

// aliveIdx reproduces the engine's crash set for reference computations.
func aliveIdx(cfg Config, n int) []int {
	return cfg.engine().AliveIDs()
}

// The four non-complete overlays of the acceptance bar: every facade
// aggregate must reach exact (or convergent) consensus on each.
func TestOverlayFacadeEndToEnd(t *testing.T) {
	n := 256
	values := uniformValues(n, 31)
	for _, topo := range []Topology{Chord, Torus, RandomRegular(4), Hypercube, SmallWorld} {
		topo := topo
		t.Run(topo.String(), func(t *testing.T) {
			cfg := Config{N: n, Seed: 30, Topology: topo}
			mx, err := Max(cfg, values)
			if err != nil {
				t.Fatal(err)
			}
			if mx.Value != Exact(cfg, "max", values) || !mx.Consensus {
				t.Fatalf("Max = %v (consensus %v), want %v", mx.Value, mx.Consensus, Exact(cfg, "max", values))
			}
			mn, err := Min(cfg, values)
			if err != nil {
				t.Fatal(err)
			}
			if mn.Value != Exact(cfg, "min", values) || !mn.Consensus {
				t.Fatalf("Min = %v (consensus %v)", mn.Value, mn.Consensus)
			}
			av, err := Average(cfg, values)
			if err != nil {
				t.Fatal(err)
			}
			if e := agg.RelError(av.Value, Exact(cfg, "average", values)); e > 1e-5 || !av.Consensus {
				t.Fatalf("Average = %v (rel err %v, consensus %v)", av.Value, e, av.Consensus)
			}
			sm, err := Sum(cfg, values)
			if err != nil {
				t.Fatal(err)
			}
			if e := agg.RelError(sm.Value, Exact(cfg, "sum", values)); e > 1e-5 || !sm.Consensus {
				t.Fatalf("Sum = %v (rel err %v, consensus %v)", sm.Value, e, sm.Consensus)
			}
			ct, err := Count(cfg, values)
			if err != nil {
				t.Fatal(err)
			}
			if e := agg.RelError(ct.Value, float64(n)); e > 1e-5 || !ct.Consensus {
				t.Fatalf("Count = %v (rel err %v, consensus %v)", ct.Value, e, ct.Consensus)
			}
			if mx.Trees == 0 || mx.Rounds == 0 || mx.Messages == 0 {
				t.Fatalf("cost accounting missing: %+v", mx)
			}
		})
	}
}

func TestOverlayFacadeDeterminism(t *testing.T) {
	for _, topo := range []Topology{Torus, RandomRegular(4), Hypercube, SmallWorld} {
		cfg := Config{N: 144, Seed: 33, Topology: topo}
		if topo == Hypercube {
			cfg.N = 128
		}
		values := uniformValues(cfg.N, 34)
		a, err := Average(cfg, values)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		b, err := Average(cfg, values)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if a.Value != b.Value || a.Messages != b.Messages || a.Rounds != b.Rounds {
			t.Fatalf("%s runs not reproducible", topo)
		}
	}
}

func TestParseTopology(t *testing.T) {
	cases := map[string]Topology{
		"complete":     Complete,
		"Complete":     Complete,
		"chord":        Chord,
		"torus":        Torus,
		"hypercube":    Hypercube,
		"ring":         Ring,
		"smallworld":   SmallWorld,
		"smallworld:3": SmallWorldK(3),
		"regular:6":    RandomRegular(6),
		"regular":      RandomRegular(0),
		"scalefree":    ScaleFree,
	}
	for text, want := range cases {
		got, err := ParseTopology(text)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", text, err)
		}
		if got != want {
			t.Fatalf("ParseTopology(%q) = %v, want %v", text, got, want)
		}
	}
	for _, bad := range []string{"", "mesh", "regular:x", "chord:", "chord:5", "hypercube:16"} {
		if _, err := ParseTopology(bad); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("ParseTopology(%q) error = %v, want ErrBadConfig", bad, err)
		}
	}
	if names := TopologyNames(); names[0] != "complete" || len(names) < 7 {
		t.Fatalf("TopologyNames = %v", names)
	}
}

// TestChordParityPreRefactor pins the overlay refactor to the exact
// pre-refactor Chord behaviour: the golden numbers below were captured
// from the Topology-enum implementation (one facade run per line) and
// must never drift for identical (Config, Seed).
func TestChordParityPreRefactor(t *testing.T) {
	type golden struct {
		cfg             Config
		value           float64
		rounds          int
		messages, drops int64
		trees           int
	}
	cases := []struct {
		name     string
		cfg      Config
		max, ave golden
	}{
		{
			name: "even512",
			cfg:  Config{N: 512, Seed: 13, Topology: Chord},
			max:  golden{value: 997.5684283367042, rounds: 1658, messages: 23656, trees: 27},
			ave:  golden{value: 511.83300890425215, rounds: 4758, messages: 45804, trees: 27},
		},
		{
			name: "even1024",
			cfg:  Config{N: 1024, Seed: 61, Topology: Chord},
			max:  golden{value: 997.7031111253385, rounds: 1831, messages: 54051, trees: 57},
			ave:  golden{value: 500.2693236525921, rounds: 5263, messages: 108039, trees: 57},
		},
		{
			name: "hashed300",
			cfg:  Config{N: 300, Seed: 5, Topology: Chord, ChordBits: 30, ChordHashed: true},
			max:  golden{value: 999.6730652081209, rounds: 1597, messages: 18028, trees: 21},
			ave:  golden{value: 501.86318670372515, rounds: 4573, messages: 40047, trees: 21},
		},
		{
			name: "lossy512",
			cfg:  Config{N: 512, Seed: 65, Topology: Chord, Loss: 0.05},
			max:  golden{value: 997.4271587119077, rounds: 1599, messages: 49715, drops: 2530, trees: 33},
			ave:  golden{value: 511.2102396079038, rounds: 4577, messages: 72151, drops: 3660, trees: 33},
		},
	}
	check := func(t *testing.T, kind string, res *Result, want golden) {
		t.Helper()
		if res.Value != want.value || res.Rounds != want.rounds || res.Messages != want.messages ||
			res.Drops != want.drops || res.Trees != want.trees {
			t.Fatalf("%s drifted from pre-refactor: got (value=%v rounds=%d msgs=%d drops=%d trees=%d), want %+v",
				kind, res.Value, res.Rounds, res.Messages, res.Drops, res.Trees, want)
		}
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			values := agg.GenUniform(c.cfg.N, 0, 1000, c.cfg.Seed+1)
			mx, err := Max(c.cfg, values)
			if err != nil {
				t.Fatal(err)
			}
			check(t, "Max", mx, c.max)
			av, err := Average(c.cfg, values)
			if err != nil {
				t.Fatal(err)
			}
			check(t, "Average", av, c.ave)
		})
	}
}

// Quantile and Histogram compose Rank/Count, so they now run on sparse
// overlays too.
func TestQuantileOnOverlay(t *testing.T) {
	n := 256
	cfg := Config{N: n, Seed: 37, Topology: Torus}
	values := uniformValues(n, 38)
	res, err := Quantile(cfg, values, 0.5, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Quantile(values, 0.5)
	if math.Abs(res.Value-want) > 10 {
		t.Fatalf("torus median ≈ %v, want ~%v", res.Value, want)
	}
}
