// The session facade: a Network is a reusable handle on one simulated
// network. The paper's headline economics — one preprocessing investment
// amortized across many aggregate computations — used to be invisible in
// this package's API: every one-shot call re-validated the Config,
// rebuilt the overlay graph and re-measured the fault-plan horizon from
// scratch. New(cfg) does each of those exactly once; the typed queries
// of query.go then run against the standing session, so a Quantile
// (up to ~80 bisection Rank steps) or a Histogram (one Rank per edge)
// pays O(build + steps) instead of O(steps × build).

package drrgossip

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	core "drrgossip/internal/drrgossip"
	"drrgossip/internal/faults"
	"drrgossip/internal/hms"
	"drrgossip/internal/overlay"
	"drrgossip/internal/sim"
	"drrgossip/internal/telemetry"
	"drrgossip/internal/xrand"
)

// overlayBuilds counts overlay constructions process-wide. Test
// instrumentation only: the session tests assert that a Network builds
// its overlay exactly once no matter how many queries run against it.
var overlayBuilds atomic.Int64

// RoundInfo is the per-round snapshot streamed to Observers: which
// protocol run of the session is executing, how far it is, and the
// engine's live accounting at the end of that round.
type RoundInfo struct {
	// Run numbers the protocol runs of the session (1-based, counting
	// horizon-measurement pre-runs too).
	Run int
	// Round is the run's current round.
	Round int
	// Phase is the protocol phase label ("drr", "aggregate", "gossip",
	// "broadcast") the run reported for this round.
	Phase string
	// Alive is the number of live nodes at the end of the round.
	Alive int
	// Messages and Drops are the run's cumulative counters so far.
	Messages int64
	Drops    int64
	// Delta is the round's own share of the counters — the change since
	// the previous observed round — so observers no longer recompute it
	// from consecutive snapshots.
	Delta RoundDelta
	// Residual is the protocol's convergence residual at the end of the
	// round when the running driver reports one (the gossip phases report
	// the spread of the root ratio estimates); NaN otherwise.
	Residual float64
	// FaultEvents is the number of fault-plan actions applied so far in
	// this run (0 without a plan).
	FaultEvents int
}

// RoundDelta is the per-round change of the engine counters carried by
// RoundInfo.Delta: messages sent, messages lost to link failure,
// messages killed by installed link faults, and synchronous calls
// placed during that round.
type RoundDelta struct {
	Messages int64
	Drops    int64
	Blocked  int64
	Calls    int64
}

// Observer receives one callback per simulated round. Observers are
// read-only taps: they cannot perturb the run, and installing one leaves
// every result and counter bit-identical. OnRound is called from the
// engine's sequential round loop — keep it fast (it is on the hot path)
// and do not call back into the Network from it.
type Observer interface {
	OnRound(RoundInfo)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(RoundInfo)

// OnRound calls f.
func (f ObserverFunc) OnRound(ri RoundInfo) { f(ri) }

// SessionStats is the session-level accounting a Network keeps on top of
// per-query Cost: the work New amortizes across queries.
type SessionStats struct {
	// Queries counts the top-level queries run against the session.
	Queries int
	// ProtocolRuns counts full protocol executions, including composite
	// sub-runs and horizon-measurement pre-runs.
	ProtocolRuns int
	// HorizonRuns counts horizon-measurement pre-runs (at most one per
	// distinct Op for plans with fractional timings; 0 otherwise).
	HorizonRuns int
	// PlanBinds counts fault-plan bindings (at most one per distinct Op).
	PlanBinds int
	// OverlayBuilt reports whether the session built a sparse overlay
	// (always exactly once, at New).
	OverlayBuilt bool
}

// Network is a reusable session on one simulated network: New validates
// the Config once, builds the sparse overlay once, and lazily measures
// the fault-plan horizon and binds the plan once per operation kind —
// after which every query reuses the standing state. Queries themselves
// stay independent: each protocol run starts from a fresh engine seeded
// by Config.Seed, so a Network's answers are bit-identical to one-shot
// runs and identical across repeated calls (determinism is per-run, not
// per-session).
//
// A Network is not safe for concurrent use; run queries sequentially.
type Network struct {
	cfg Config
	ov  overlay.Overlay // nil on the Complete topology

	// eng is the session's pooled engine: allocated on the first protocol
	// run and Reset (bit-identically to a fresh engine) before every
	// later one, so a Quantile's ~80 Rank runs share one set of buffers
	// instead of rebuilding inboxes, delivery ring and RNG streams ~80
	// times. RunAll workers pool their own engines the same way.
	eng *sim.Engine

	// bounds caches the fault plan resolved per operation kind: the
	// horizon (total healthy rounds) differs between the max- and
	// ave-pipelines, so fractional event timings resolve per Op — but
	// only once per Op, where the one-shot facade re-measured per call.
	bounds map[Op]*faults.Bound

	// sample caches the Config.SampleNodes id set (computed once per
	// session; a pure function of Seed, N and SampleNodes, so worker
	// replicas recompute the identical set).
	sample []int

	observers []Observer

	// em is the session's telemetry emitter (nil when Config.Telemetry is
	// unset — the "telemetry off" state every hot path checks for free).
	// lastRound is the previous observed round's counter snapshot, the
	// baseline for RoundInfo.Delta; it is reset at every run start.
	em        *telemetry.Emitter
	lastRound sim.Counters

	// wd is the watchdog of the query currently in flight (nil between
	// queries and whenever the config sets no Deadline/RoundBudget and
	// the context is uncancellable). runQuery installs it; execOnce and
	// execAsyncOnce hand it to the engines as their abort check.
	wd *watchdog

	queries     int
	protoRuns   int
	horizonRuns int
	planBinds   int
}

// New validates cfg and builds the session: the overlay graph is
// constructed here (and never again), fault plans are checked, and the
// returned Network is ready to answer queries.
func New(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nw := &Network{cfg: cfg, bounds: make(map[Op]*faults.Bound)}
	if cfg.Telemetry != nil {
		nw.em = telemetry.NewEmitter(*cfg.Telemetry)
	}
	if !cfg.Topology.isComplete() {
		ov, err := cfg.buildOverlay()
		if err != nil {
			return nil, err
		}
		nw.ov = ov
		overlayBuilds.Add(1)
	}
	return nw, nil
}

// Config returns the configuration the session was built with.
func (nw *Network) Config() Config { return nw.cfg }

// Observe registers an observer for every subsequent protocol round of
// the session and returns the Network for chaining. Observers stack.
func (nw *Network) Observe(o Observer) *Network {
	if o != nil {
		nw.observers = append(nw.observers, o)
	}
	return nw
}

// Stats returns the session's amortization accounting.
func (nw *Network) Stats() SessionStats {
	return SessionStats{
		Queries:      nw.queries,
		ProtocolRuns: nw.protoRuns,
		HorizonRuns:  nw.horizonRuns,
		PlanBinds:    nw.planBinds,
		OverlayBuilt: nw.ov != nil,
	}
}

// Exact returns the reference value the query should converge to over
// this session's surviving population (see ExactOf).
func (nw *Network) Exact(q Query) (float64, error) { return ExactOf(nw.cfg, q) }

// Run executes one query against the session.
func (nw *Network) Run(q Query) (*Answer, error) { return nw.RunContext(context.Background(), q) }

// RunContext is Run with cancellation and bounded degradation: the
// context is checked before every protocol run and — through the
// engine watchdog — every few rounds (events, in Async mode) inside a
// run, so even a single long faulted run stops promptly. A cancelled
// query returns its partial Answer (Quality.Partial true, Reason
// "cancelled") alongside the context error; Config.Deadline and
// Config.RoundBudget aborts return the partial Answer with a nil error
// (see docs/ROBUSTNESS.md, "The degradation contract"). When
// Config.Retry is set, non-converged answers are re-run on shadow
// epochs before being returned.
func (nw *Network) RunContext(ctx context.Context, q Query) (*Answer, error) {
	nw.queries++
	return nw.runWithRetry(ctx, q)
}

// runQuery executes one attempt of a query — no retry policy applied —
// holding the query-scoped watchdog for its duration.
func (nw *Network) runQuery(ctx context.Context, q Query) (*Answer, error) {
	nw.wd = nw.newWatchdog(ctx)
	defer func() { nw.wd = nil }()
	if err := q.validate(); err != nil {
		return nil, err
	}
	if nw.cfg.Mode == Async {
		return nw.runAsync(ctx, q)
	}
	switch q.Op {
	case OpMax, OpMin, OpSum, OpCount, OpAverage, OpRank, OpMoments:
		return nw.aggregate(ctx, q)
	case OpQuantile:
		if nw.cfg.QuantileMethod == QuantileHMS {
			return nw.quantileHMS(ctx, q.Values, q.Arg, q.Tol)
		}
		return nw.quantile(ctx, q.Values, q.Arg, q.Tol)
	case OpHistogram:
		return nw.histogram(ctx, q.Values, q.Edges)
	default:
		return nil, fmt.Errorf("%w: unknown query op %s (use the XxxOf constructors)", ErrBadConfig, q.Op)
	}
}

// BatchOptions tune how RunAll executes a batch.
type BatchOptions struct {
	// Parallelism fans the batch's queries across up to this many worker
	// goroutines (0 or 1 runs sequentially; the count is clamped to the
	// batch size). Each worker owns a full replica of the execution
	// state — its own pooled engine and its own clones of the session's
	// fault bindings — and every protocol run is seeded from Config.Seed
	// exactly as in sequential execution, so the answers are
	// bit-identical for any parallelism (see README, "Determinism").
	// Session observers are not streamed during a concurrent batch:
	// per-round callbacks from concurrent engines would interleave
	// nondeterministically.
	Parallelism int
}

// RunAll executes a batch of queries against the session — one overlay,
// one crash-set, one fault binding per operation kind — and returns the
// per-query answers together with the batch's aggregate bill. An
// optional BatchOptions opts the batch into concurrent execution.
func (nw *Network) RunAll(queries []Query, opts ...BatchOptions) ([]*Answer, Cost, error) {
	return nw.RunAllContext(context.Background(), queries, opts...)
}

// RunAllContext is RunAll with cancellation (see RunContext). On error
// the answers completed so far are returned alongside it (under
// concurrency: the answers of every query preceding the failed one).
func (nw *Network) RunAllContext(ctx context.Context, queries []Query, opts ...BatchOptions) ([]*Answer, Cost, error) {
	// Reject structurally invalid queries before any execution — in
	// particular before runAllParallel resolves fault bindings for the
	// batch, which used to happen even for queries that could never run.
	for i, q := range queries {
		if err := q.validate(); err != nil {
			return nil, Cost{}, fmt.Errorf("query %d (%s): %w", i, q.Op, err)
		}
	}
	workers := 0
	if len(opts) > 0 {
		workers = opts[0].Parallelism
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers > 1 {
		return nw.runAllParallel(ctx, queries, workers)
	}
	answers := make([]*Answer, 0, len(queries))
	var total Cost
	for i, q := range queries {
		a, err := nw.RunContext(ctx, q)
		if err != nil {
			return answers, total, fmt.Errorf("query %d (%s): %w", i, q.Op, err)
		}
		answers = append(answers, a)
		total = total.Add(a.Cost)
	}
	return answers, total, nil
}

// runAllParallel fans the batch across workers. The contract is
// bit-identical answers: every protocol run is independently seeded by
// Config.Seed and runs on a worker-private engine, and the fault
// bindings are resolved once up front (sequentially, on the session
// engine — the same pre-runs sequential execution would perform) and
// then cloned per worker, so no mutable state is shared and no run can
// observe another.
func (nw *Network) runAllParallel(ctx context.Context, queries []Query, workers int) ([]*Answer, Cost, error) {
	if !nw.cfg.Faults.Empty() {
		if nw.cfg.Mode == Async {
			// One binding serves the whole async batch (OpAverage only);
			// resolve it on the first average query's values.
			for _, q := range queries {
				if q.Op != OpAverage {
					continue
				}
				if _, err := nw.bindAsync(ctx, q.Values); err != nil {
					return nil, Cost{}, fmt.Errorf("binding fault plan for %s: %w", OpAverage, err)
				}
				break
			}
		} else {
			for _, q := range queries {
				for _, op := range q.baseOps(true) {
					if _, err := nw.bind(ctx, op, dispatch(op, q.Values, q.Arg)); err != nil {
						return nil, Cost{}, fmt.Errorf("binding fault plan for %s: %w", op, err)
					}
				}
			}
		}
	}
	answers := make([]*Answer, len(queries))
	errs := make([]error, len(queries))
	// With telemetry attached, each query's event stream is captured in
	// its own Buffer and forwarded to the session sink during the ordered
	// reduction below — the sink sees one deterministic stream in query
	// order no matter how the workers interleaved.
	var bufs []telemetry.Buffer
	if nw.em.Enabled() {
		bufs = make([]telemetry.Buffer, len(queries))
	}
	pool := sync.Pool{New: func() any { return nw.workerSession() }}
	sim.ForEachRun(len(queries), workers, func(i int) {
		ws := pool.Get().(*Network)
		if bufs != nil {
			// Runs are numbered per query from 0 here; the reduction
			// rebases them onto the session's run counter.
			ws.protoRuns = 0
			ws.em = telemetry.NewEmitter(telemetry.Options{Sink: &bufs[i], RoundEvery: nw.em.RoundEvery()})
		}
		answers[i], errs[i] = ws.RunContext(ctx, queries[i])
		ws.em = nil
		pool.Put(ws)
	})
	// Deterministic reduction in query order: the error of the
	// lowest-indexed failing query wins, with the preceding answers —
	// exactly what sequential execution would have returned.
	out := make([]*Answer, 0, len(queries))
	var total Cost
	for i := range queries {
		nw.queries++
		if bufs != nil {
			for _, ev := range bufs[i].Events() {
				ev.Run += nw.protoRuns
				nw.em.Forward(&ev)
			}
		}
		if errs[i] != nil {
			return out, total, fmt.Errorf("query %d (%s): %w", i, queries[i].Op, errs[i])
		}
		out = append(out, answers[i])
		total = total.Add(answers[i].Cost)
		nw.protoRuns += answers[i].Cost.Runs
	}
	return out, total, nil
}

// workerSession replicates the session for one RunAll worker: the same
// config and the same (immutable, safely shared) overlay, per-worker
// clones of the fault bindings, a per-worker pooled engine, and no
// observers. Worker sessions never rebuild the overlay and their own
// SessionStats are discarded; the parent folds the batch into its
// accounting deterministically.
func (nw *Network) workerSession() *Network {
	ws := &Network{cfg: nw.cfg, ov: nw.ov, bounds: make(map[Op]*faults.Bound, len(nw.bounds))}
	for op, b := range nw.bounds {
		ws.bounds[op] = b.Clone()
	}
	return ws
}

// Max computes the global maximum (DRR-gossip-max, Algorithm 7).
func (nw *Network) Max(values []float64) (*Answer, error) { return nw.Run(MaxOf(values)) }

// Min computes the global minimum.
func (nw *Network) Min(values []float64) (*Answer, error) { return nw.Run(MinOf(values)) }

// Sum computes the global sum (distinguished-root push-sum).
func (nw *Network) Sum(values []float64) (*Answer, error) { return nw.Run(SumOf(values)) }

// Count computes the number of surviving nodes.
func (nw *Network) Count(values []float64) (*Answer, error) { return nw.Run(CountOf(values)) }

// Average computes the global average (DRR-gossip-ave, Algorithm 8).
func (nw *Network) Average(values []float64) (*Answer, error) { return nw.Run(AverageOf(values)) }

// Rank computes Rank(q) = |{alive i : values[i] <= q}|.
func (nw *Network) Rank(values []float64, q float64) (*Answer, error) {
	return nw.Run(RankOf(values, q))
}

// Moments computes mean and variance in one run (Complete only).
func (nw *Network) Moments(values []float64) (*Answer, error) { return nw.Run(MomentsOf(values)) }

// Quantile approximates the φ-quantile by Rank bisection (the paper's
// "Rank etc." reduction); see QuantileOf.
func (nw *Network) Quantile(values []float64, phi, tol float64) (*Answer, error) {
	return nw.Run(QuantileOf(values, phi, tol))
}

// Histogram computes len(edges)+1 bucket counts with one Rank run per
// edge, plus one Count run for the open bucket's population when a
// fault plan is active; see HistogramOf.
func (nw *Network) Histogram(values []float64, edges []float64) (*Answer, error) {
	return nw.Run(HistogramOf(values, edges))
}

// ---- execution machinery ----

// protoOut is one protocol run's output: the facade-level result, plus
// the richer moments result when the run was an OpMoments pipeline, or a
// pre-wrapped facade Result for runs outside the core pipelines (the HMS
// sampling session, which bills its own phase breakdown).
type protoOut struct {
	res *core.Result
	mom *core.MomentsResult
	pre *Result
}

// protoFunc executes one full protocol run on a fresh engine.
type protoFunc func(eng *sim.Engine, ov overlay.Overlay) (protoOut, error)

// dispatch selects the dense or sparse pipeline for op.
func dispatch(op Op, values []float64, arg float64) protoFunc {
	return func(eng *sim.Engine, ov overlay.Overlay) (protoOut, error) {
		var r *core.Result
		var err error
		switch {
		case op == OpMoments:
			// Guarded here as well as in aggregate(): the parallel batch
			// path binds fault plans through dispatch directly, and the
			// dense Moments protocol would otherwise silently run on a
			// sparse configuration.
			if ov != nil {
				return protoOut{}, errMomentsTopology(ov.Name())
			}
			m, merr := core.Moments(eng, values, core.Options{})
			return protoOut{mom: m}, merr
		case ov == nil:
			switch op {
			case OpMax:
				r, err = core.Max(eng, values, core.Options{})
			case OpMin:
				r, err = core.Min(eng, values, core.Options{})
			case OpSum:
				r, err = core.Sum(eng, values, core.Options{})
			case OpCount:
				r, err = core.Count(eng, values, core.Options{})
			case OpAverage:
				r, err = core.Ave(eng, values, core.Options{})
			case OpRank:
				r, err = core.Rank(eng, values, arg, core.Options{})
			default:
				return protoOut{}, fmt.Errorf("%w: %s has no single-run protocol", ErrBadConfig, op)
			}
		default:
			switch op {
			case OpMax:
				r, err = core.MaxSparse(eng, ov, values, core.SparseOptions{})
			case OpMin:
				r, err = core.MinSparse(eng, ov, values, core.SparseOptions{})
			case OpSum:
				r, err = core.SumSparse(eng, ov, values, core.SparseOptions{})
			case OpCount:
				r, err = core.CountSparse(eng, ov, values, core.SparseOptions{})
			case OpAverage:
				r, err = core.AveSparse(eng, ov, values, core.SparseOptions{})
			case OpRank:
				r, err = core.RankSparse(eng, ov, values, arg, core.SparseOptions{})
			default:
				return protoOut{}, fmt.Errorf("%w: %s has no single-run protocol", ErrBadConfig, op)
			}
		}
		return protoOut{res: r}, err
	}
}

// engine returns the session's pooled engine, Reset to the run's initial
// state — one engine allocation per session (and per RunAll worker), not
// per protocol run. Reset is pinned bit-identical to NewEngine, so
// pooling cannot change a single counter or result.
func (nw *Network) engine() *sim.Engine {
	if nw.eng == nil {
		nw.eng = nw.cfg.engine()
	} else {
		nw.eng.Reset(nw.cfg.simOptions())
	}
	return nw.eng
}

// execOnce performs one protocol run on the pooled engine, attaching the
// bound fault schedule (if any), the session's observers, the query
// watchdog, and the telemetry emitter's engine hooks. The engine Reset
// at the top clears every hook from the previous run, so runs cannot
// leak observability state into each other. A watchdog abort unwinds
// the run as a *sim.AbortError panic, recovered here into a partial
// Result (the engine's accounting at the abort round) plus the abort
// cause as the error.
func (nw *Network) execOnce(b *faults.Bound, op Op, run protoFunc) (res *Result, mres *core.MomentsResult, err error) {
	nw.protoRuns++
	eng := nw.engine()
	runIdx := nw.protoRuns
	em := nw.em
	if em.Enabled() {
		em.RunStart(runIdx, op.String(), eng)
		eng.SetPhaseObserver(func(string) { em.Phase(eng) })
		eng.SetMembershipObserver(func(node int, alive bool) { em.Fault(eng, node, alive) })
	}
	wantRounds := em.WantsRounds()
	if len(nw.observers) > 0 || wantRounds {
		nw.lastRound = sim.Counters{}
		eng.SetRoundObserver(func(round int) {
			if wantRounds {
				em.Round(eng)
			}
			if len(nw.observers) > 0 {
				nw.notify(runIdx, round, eng, b)
			}
		})
		// Residuals are only read on the rounds surfaced to a consumer:
		// every round when RoundInfo observers are attached, else on the
		// telemetry round-event stride. The drivers skip the O(roots)
		// spread scan on all other rounds.
		if len(nw.observers) > 0 {
			eng.SetResidualStride(1)
		} else {
			eng.SetResidualStride(em.RoundEvery())
		}
	}
	if nw.wd != nil {
		eng.SetAbortCheck(nw.wd.check, abortStrideSync)
	}
	if b != nil {
		b.Attach(eng)
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ae, ok := r.(*sim.AbortError)
		if !ok {
			panic(r)
		}
		// The watchdog unwound the run mid-protocol: salvage the engine's
		// accounting as a partial Result and surface the cause. The
		// telemetry run still closes, so traces show the aborted run.
		res, mres, err = nw.partialResult(eng, b), nil, ae.Err
		em.RunEnd(eng)
	}()
	out, rerr := run(eng, nw.ov)
	if rerr != nil {
		return nil, nil, rerr
	}
	em.RunEnd(eng)
	if out.pre != nil {
		res = out.pre
		res.Alive = eng.NumAlive()
		if b != nil {
			res.FaultEvents = b.Fired()
			res.FaultCrashes = b.Crashed()
			res.FaultRevives = b.Revived()
		}
		return res, nil, nil
	}
	if out.mom != nil {
		res = &Result{
			Value:      out.mom.Mean,
			PerNode:    out.mom.PerNodeMean,
			Consensus:  out.mom.Consensus,
			Rounds:     out.mom.Stats.Rounds,
			Messages:   out.mom.Stats.Messages,
			Drops:      out.mom.Stats.Drops,
			PhaseCosts: phaseCosts(out.mom.Phases),
			Alive:      eng.NumAlive(),
		}
	} else {
		res = wrap(eng, out.res)
	}
	if b != nil {
		res.FaultEvents = b.Fired()
		res.FaultCrashes = b.Crashed()
		res.FaultRevives = b.Revived()
	}
	return res, out.mom, nil
}

// execute runs op's protocol with the session's fault binding for that
// operation kind, creating the binding on first use. Plans whose events
// are placed by horizon fraction need the run's healthy length: the
// first query of each Op kind executes one unfaulted pre-run to measure
// it (both runs are deterministic in Seed, so the measured horizon is
// exact); every later run of the same kind — every further Rank step of
// a Quantile or Histogram — reuses the binding.
func (nw *Network) execute(ctx context.Context, op Op, run protoFunc) (*Result, *core.MomentsResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if nw.cfg.Faults.Empty() {
		return nw.execOnce(nil, op, run)
	}
	b, err := nw.bind(ctx, op, run)
	if err != nil {
		return nil, nil, err
	}
	return nw.execOnce(b, op, run)
}

// bind returns the session's fault binding for op, resolving it on first
// use (including the horizon-measurement pre-run when the plan places
// events by horizon fraction). The measured horizon depends only on the
// operation's pipeline shape — protocol control flow is value-independent
// (values ride payloads; rounds, calls and loss decisions do not read
// them) — so any query of the same op kind resolves the same binding.
func (nw *Network) bind(ctx context.Context, op Op, run protoFunc) (*faults.Bound, error) {
	if b, ok := nw.bounds[op]; ok {
		return b, nil
	}
	horizon := 0
	if nw.cfg.Faults.NeedsHorizon() {
		healthy, _, err := nw.execOnce(nil, op, run)
		if err != nil {
			return nil, fmt.Errorf("drrgossip: horizon measurement run: %w", err)
		}
		nw.horizonRuns++
		horizon = healthy.Rounds
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	b, err := nw.cfg.Faults.Bind(nw.cfg.N, nw.cfg.Seed, horizon)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	nw.planBinds++
	nw.bounds[op] = b
	return b, nil
}

// notify fans a round snapshot out to the observers. In Async mode the
// same path streams per-event snapshots, with the dispatched event count
// standing in for the round index.
func (nw *Network) notify(run, round int, eng telemetry.EngineView, b *faults.Bound) {
	st := eng.Stats()
	d := st.Sub(nw.lastRound)
	nw.lastRound = st
	ri := RoundInfo{
		Run:      run,
		Round:    round,
		Phase:    eng.Phase(),
		Alive:    eng.NumAlive(),
		Messages: st.Messages,
		Drops:    st.Drops,
		Delta:    RoundDelta{Messages: d.Messages, Drops: d.Drops, Blocked: d.Blocked, Calls: d.Calls},
		Residual: eng.Residual(),
	}
	if b != nil {
		ri.FaultEvents = b.Fired()
	}
	for _, o := range nw.observers {
		o.OnRound(ri)
	}
}

// errMomentsTopology is the query-validation error for Moments on a
// sparse overlay. Moments is a single-run, three-component extension of
// the dense Phase II convergecast (Σv, Σv², count); the Section 4 sparse
// pipeline has no equivalent single run, so the limitation is reported
// loudly instead of silently running the wrong (dense) protocol. See
// README ("Limitations") and docs/PAPER_MAP.md.
func errMomentsTopology(topo string) error {
	return fmt.Errorf("%w: Moments runs only on the Complete topology; topology %q selects the Section 4 sparse pipeline, which has no single-run moments variant — run AverageOf (and derive variance from a second query) or use Topology: Complete; see docs/PAPER_MAP.md", ErrBadConfig, topo)
}

// sampleIDs draws k distinct node ids from [0, n) by a partial
// Fisher-Yates shuffle seeded from (seed, n, k) only, returned sorted.
// Being independent of everything else in a run, the sample is identical
// across repeated queries, engine reuse, and any Workers (shard) count.
func sampleIDs(seed uint64, n, k int) []int {
	if k > n {
		k = n
	}
	rng := xrand.Derive(seed, 0x5A17, uint64(n), uint64(k))
	moved := make(map[int]int, 2*k)
	ids := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		vj, ok := moved[j]
		if !ok {
			vj = j
		}
		vi, ok := moved[i]
		if !ok {
			vi = i
		}
		ids[i] = vj
		moved[j] = vi
	}
	sort.Ints(ids)
	return ids
}

// materializePerNode renders a run's full per-node vector according to
// Config.SampleNodes: untouched for AllNodes, dropped by default, or
// copied down to the session's deterministic sample.
func (nw *Network) materializePerNode(full []float64) (values []float64, ids []int) {
	switch {
	case nw.cfg.SampleNodes == AllNodes:
		return full, nil
	case nw.cfg.SampleNodes == 0:
		return nil, nil
	default:
		if nw.sample == nil {
			nw.sample = sampleIDs(nw.cfg.Seed, nw.cfg.N, nw.cfg.SampleNodes)
		}
		out := make([]float64, len(nw.sample))
		for i, id := range nw.sample {
			out[i] = full[id]
		}
		// Answers own their SampleIDs: hand out a copy so mutating one
		// answer's slice cannot skew another's (or the session's cache).
		return out, append([]int(nil), nw.sample...)
	}
}

// aggregate answers the single-run operations (OpMax..OpRank, OpMoments).
func (nw *Network) aggregate(ctx context.Context, q Query) (*Answer, error) {
	if err := nw.cfg.checkValues(q.Values); err != nil {
		return nil, err
	}
	if q.Op == OpMoments && !nw.cfg.Topology.isComplete() {
		return nil, errMomentsTopology(nw.cfg.Topology.String())
	}
	res, mom, err := nw.execute(ctx, q.Op, dispatch(q.Op, q.Values, q.Arg))
	if err != nil {
		if isAbort(err) {
			return nw.abortedAnswer(q.Op, res, err)
		}
		return nil, err
	}
	ans := &Answer{
		Op:           q.Op,
		Value:        res.Value,
		Consensus:    res.Consensus,
		Cost:         Cost{Runs: 1, Rounds: res.Rounds, Messages: res.Messages, Drops: res.Drops},
		PhaseCosts:   res.PhaseCosts,
		Trees:        res.Trees,
		Alive:        res.Alive,
		FaultEvents:  res.FaultEvents,
		FaultCrashes: res.FaultCrashes,
		FaultRevives: res.FaultRevives,
		Converged:    true,
	}
	ans.PerNode, ans.SampleIDs = nw.materializePerNode(res.PerNode)
	if mom != nil {
		ans.Mean, ans.Variance, ans.Std = mom.Mean, mom.Variance, mom.Std
	}
	nw.fillQuality(ans, noResidual, nil)
	return ans, nil
}

// quantile approximates the φ-quantile by bisection over the value
// range, one Rank run per step. All steps run against the same session,
// so the overlay and the per-Op fault bindings are reused throughout —
// the amortization the session API exists for.
func (nw *Network) quantile(ctx context.Context, values []float64, phi, tol float64) (*Answer, error) {
	if err := nw.cfg.checkValues(values); err != nil {
		return nil, err
	}
	ans := &Answer{Op: OpQuantile, Converged: true}
	step := func(op Op, arg float64) (*Result, error) {
		res, _, err := nw.execute(ctx, op, dispatch(op, values, arg))
		if res != nil {
			// Bill the run — aborted steps included: the partial answer's
			// Cost covers the work actually spent before the abort.
			ans.Cost.Runs++
			ans.Cost.Rounds += res.Rounds
			ans.Cost.Messages += res.Messages
			ans.Cost.Drops += res.Drops
			ans.PhaseCosts = mergePhaseCosts(ans.PhaseCosts, res.PhaseCosts)
			ans.Alive = res.Alive
			ans.FaultEvents, ans.FaultCrashes, ans.FaultRevives = res.FaultEvents, res.FaultCrashes, res.FaultRevives
		}
		if err != nil {
			return nil, fmt.Errorf("quantile %s step: %w", op, err)
		}
		return res, nil
	}
	minRes, err := step(OpMin, 0)
	if err != nil {
		return nw.finishAbort(ans, err)
	}
	maxRes, err := step(OpMax, 0)
	if err != nil {
		return nw.finishAbort(ans, err)
	}
	countRes, err := step(OpCount, 0)
	if err != nil {
		return nw.finishAbort(ans, err)
	}
	target := math.Ceil(phi * math.Round(countRes.Value))
	lo, hi := minRes.Value, maxRes.Value
	if tol <= 0 {
		tol = (hi - lo) / (1 << 20)
	}
	if tol <= 0 { // constant values
		ans.Value = lo
		nw.fillQuality(ans, noResidual, nil)
		return ans, nil
	}
	for hi-lo > tol && ans.Cost.Runs < maxQuantileRuns {
		mid := lo + (hi-lo)/2
		rankRes, err := step(OpRank, mid)
		if err != nil {
			return nw.finishAbort(ans, err)
		}
		if math.Round(rankRes.Value) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	// The run cap can end the bisection before it reaches tol; that is a
	// looser answer, so say so instead of silently returning it.
	ans.Converged = hi-lo <= tol
	ans.Value = hi
	nw.fillQuality(ans, noResidual, nil)
	return ans, nil
}

// maxQuantileRuns caps the total aggregate runs a Quantile query may
// spend — Min + Max + Count + bisection steps for QuantileBisect, and
// Count + sampling session + certification probes + any fallback
// bisection for QuantileHMS. A quantile stopped by the cap reports
// Converged == false on its Answer.
const maxQuantileRuns = 80

// quantileHMS computes the φ-quantile with the Haeupler–Mohapatra–Su
// sampling protocol (internal/hms; selected by Config.QuantileMethod):
// the alive population m fixes the target rank t = ceil(φ·m) — known
// statically on a crash-free session, measured by a Count run when
// static crashes or a fault plan can shrink it; one O(log n)-round
// gossip-sampling session (billed as one run under the "sample" phase)
// localizes the t-th order statistic to a handful of candidate values;
// and a short walk of exact Rank probes — ordinary aggregate runs, so
// fault plans replay on them exactly as on bisection's steps — certifies
// the exact quantile. Typically ~3 aggregate runs total where bisection
// spends ~23, and exact rather than tol-approximate. When the walk
// cannot certify (rank drift under an aggressive fault plan, extreme
// loss), it falls back to value bisection inside the walk's probed
// bracket, so the answer degrades to bisection quality rather than
// failing. The sampling session runs without the dynamic fault plan
// attached (static crashes and per-message loss still apply): the plan
// carries aggregate semantics and replays on the Count/Rank runs, which
// is what keeps HMS and bisection answering against the same faulted
// rank function.
func (nw *Network) quantileHMS(ctx context.Context, values []float64, phi, tol float64) (*Answer, error) {
	if err := nw.cfg.checkValues(values); err != nil {
		return nil, err
	}
	ans := &Answer{Op: OpQuantile, Converged: true}
	bill := func(res *Result) {
		// Bill the run — aborted steps included: the partial answer's
		// Cost covers the work actually spent before the abort.
		ans.Cost.Runs++
		ans.Cost.Rounds += res.Rounds
		ans.Cost.Messages += res.Messages
		ans.Cost.Drops += res.Drops
		ans.PhaseCosts = mergePhaseCosts(ans.PhaseCosts, res.PhaseCosts)
		ans.Alive = res.Alive
		ans.FaultEvents, ans.FaultCrashes, ans.FaultRevives = res.FaultEvents, res.FaultCrashes, res.FaultRevives
	}
	step := func(op Op, arg float64) (*Result, error) {
		res, _, err := nw.execute(ctx, op, dispatch(op, values, arg))
		if res != nil {
			bill(res)
		}
		if err != nil {
			return nil, fmt.Errorf("quantile %s step: %w", op, err)
		}
		return res, nil
	}
	// The target rank needs the alive population size m. With no static
	// crashes and no dynamic plan every node stays alive, so m == N is
	// known without spending a run; otherwise a Count run measures it.
	m := nw.cfg.N
	if nw.cfg.CrashFraction > 0 || !nw.cfg.Faults.Empty() {
		countRes, err := step(OpCount, 0)
		if err != nil {
			return nw.finishAbort(ans, err)
		}
		m = int(math.Round(countRes.Value))
		if m < 1 {
			m = 1
		}
	}
	t := int(math.Ceil(phi * float64(m)))
	if t < 1 {
		t = 1
	}
	if t > m {
		t = m
	}
	if err := ctx.Err(); err != nil {
		return nw.finishAbort(ans, err)
	}
	var sum *hms.Summary
	sampleRes, _, err := nw.execOnce(nil, OpQuantile, func(eng *sim.Engine, ov overlay.Overlay) (protoOut, error) {
		s, serr := hms.Sample(eng, ov, values, hms.Options{Target: t, Count: m})
		if serr != nil {
			return protoOut{}, serr
		}
		sum = s
		st := eng.Stats()
		pre := &Result{
			Value:    math.NaN(),
			Rounds:   st.Rounds,
			Messages: st.Messages,
			Drops:    st.Drops,
			PhaseCosts: []PhaseCost{{
				Phase: hms.PhaseName, Rounds: st.Rounds,
				Messages: st.Messages, Drops: st.Drops, Calls: st.Calls,
			}},
		}
		if c, ok := s.Candidate(); ok {
			pre.Value = c
		}
		return protoOut{pre: pre}, nil
	})
	if sampleRes != nil {
		bill(sampleRes)
	}
	if err != nil {
		if isAbort(err) {
			return nw.finishAbort(ans, fmt.Errorf("quantile sample session: %w", err))
		}
		return nil, fmt.Errorf("quantile sample session: %w", err)
	}
	w := hms.NewWalk(sum)
	for ans.Cost.Runs < maxQuantileRuns {
		q, ok := w.Next()
		if !ok {
			break
		}
		rankRes, err := step(OpRank, q)
		if err != nil {
			return nw.finishAbort(ans, err)
		}
		w.Observe(q, int(math.Round(rankRes.Value)))
	}
	if v, exact := w.Exact(); exact && nw.cfg.Faults.Empty() {
		ans.Value = v
		nw.fillQuality(ans, noResidual, nil)
		return ans, nil
	}
	// No trusted certificate. With a dynamic fault plan attached the
	// walk's exactness certificates are unsound — the sampling session
	// runs unfaulted, so its multiset can hold values the faulted Rank
	// runs no longer count (a partition, say, shrinks the measured
	// population to node 0's component) — and a "certified" sample may
	// not exist in the measured multiset at all. Either way the probes
	// still bracket the rank crossing, so finish with value bisection
	// against the same faulted rank function the bisection reference
	// queries: both methods then converge to the same crossing within
	// tol, which is what the differential invariants assert.
	// (Min/Max runs fill any missing bracket end.)
	lo, loOK, hi, hiOK := w.Bracket()
	clamp := !nw.cfg.Faults.Empty()
	if !loOK || clamp {
		minRes, err := step(OpMin, 0)
		if err != nil {
			return nw.finishAbort(ans, err)
		}
		if !loOK || lo < minRes.Value {
			lo = minRes.Value
		}
	}
	if !hiOK || clamp {
		maxRes, err := step(OpMax, 0)
		if err != nil {
			return nw.finishAbort(ans, err)
		}
		if !hiOK || hi > maxRes.Value {
			hi = maxRes.Value
		}
	}
	// Under a plan the probed bracket is clamped into the measured
	// [Min, Max]: aggressive churn can leave the walk bracketing a rank
	// crossing the surviving population cannot even express, and the
	// bisection reference never answers outside that range either.
	if hi < lo {
		hi = lo
	}
	if tol <= 0 {
		tol = (hi - lo) / (1 << 20)
	}
	if tol <= 0 { // degenerate bracket
		ans.Value = hi
		nw.fillQuality(ans, noResidual, nil)
		return ans, nil
	}
	for hi-lo > tol && ans.Cost.Runs < maxQuantileRuns {
		mid := lo + (hi-lo)/2
		rankRes, err := step(OpRank, mid)
		if err != nil {
			return nw.finishAbort(ans, err)
		}
		if math.Round(rankRes.Value) >= float64(t) {
			hi = mid
		} else {
			lo = mid
		}
	}
	ans.Converged = hi-lo <= tol
	ans.Value = hi
	nw.fillQuality(ans, noResidual, nil)
	return ans, nil
}

// histogram computes the bucket counts with one Rank run per edge. Every
// run reuses the session verbatim: the engine's crash set is derived
// from the seed and the fault binding replays identically, so all steps
// count over the same surviving population and the bucket differences
// stay consistent.
func (nw *Network) histogram(ctx context.Context, values, edges []float64) (*Answer, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("%w: Histogram needs at least one edge", ErrBadConfig)
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("%w: histogram edges must be strictly increasing", ErrBadConfig)
		}
	}
	if err := nw.cfg.checkValues(values); err != nil {
		return nil, err
	}
	ans := &Answer{Op: OpHistogram, Value: math.NaN(), Converged: true, Counts: make([]float64, len(edges)+1)}
	cum := make([]float64, len(edges))
	var last *Result
	// step bills one sub-run into the answer — aborted steps included, so
	// a partial answer's Cost covers the work spent before the abort.
	step := func(op Op, arg float64) (*Result, error) {
		res, _, err := nw.execute(ctx, op, dispatch(op, values, arg))
		if res != nil {
			ans.Cost.Runs++
			ans.Cost.Rounds += res.Rounds
			ans.Cost.Messages += res.Messages
			ans.Cost.Drops += res.Drops
			ans.PhaseCosts = mergePhaseCosts(ans.PhaseCosts, res.PhaseCosts)
			ans.Alive = res.Alive
			ans.FaultEvents, ans.FaultCrashes, ans.FaultRevives = res.FaultEvents, res.FaultCrashes, res.FaultRevives
			last = res
		}
		return res, err
	}
	for i, edge := range edges {
		res, err := step(OpRank, edge)
		if err != nil {
			return nw.finishAbort(ans, fmt.Errorf("histogram edge %v: %w", edge, err))
		}
		cum[i] = math.Round(res.Value)
	}
	ans.Counts[0] = cum[0]
	for i := 1; i < len(edges); i++ {
		ans.Counts[i] = cum[i] - cum[i-1]
	}
	// Last (open) bucket: the measured population minus everything below.
	// In the static model the population is exactly the engine's alive
	// count, which the final Rank run already reports. Under a fault plan
	// the two diverge — a crash after Phase II banks the tree sums leaves
	// the Rank counts at the pre-crash population while the end-of-run
	// alive count is smaller (and a rejoin inflates it), which would push
	// the open bucket negative. So with a plan active the population is
	// measured with a Count run instead: Count rides the same pipeline
	// dynamics as Rank (banked tree sizes), so it is consistent with the
	// cumulative counts in every fault scenario, exactly as Quantile's
	// bisection target is. The pre-session facade used a fresh *static*
	// engine here, which was wrong whenever the plan changed membership.
	lastRank := last
	total := float64(lastRank.Alive)
	if !nw.cfg.Faults.Empty() {
		countRes, err := step(OpCount, 0)
		if err != nil {
			return nw.finishAbort(ans, fmt.Errorf("histogram population count: %w", err))
		}
		total = math.Round(countRes.Value)
		// The answer's membership fields describe the Rank runs the counts
		// came from, not the trailing population probe.
		ans.Alive = lastRank.Alive
		ans.FaultEvents, ans.FaultCrashes, ans.FaultRevives = lastRank.FaultEvents, lastRank.FaultCrashes, lastRank.FaultRevives
	}
	ans.Counts[len(edges)] = total - cum[len(edges)-1]
	nw.fillQuality(ans, noResidual, nil)
	return ans, nil
}
